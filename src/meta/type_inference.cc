#include "meta/type_inference.h"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace tabbin {

const char* SemTypeName(SemType type) {
  switch (type) {
    case SemType::kText:
      return "text";
    case SemType::kNumeric:
      return "numeric";
    case SemType::kRange:
      return "range";
    case SemType::kDisease:
      return "disease";
    case SemType::kDrug:
      return "drug";
    case SemType::kChemical:
      return "chemical";
    case SemType::kVaccine:
      return "vaccine";
    case SemType::kTreatment:
      return "treatment";
    case SemType::kSymptom:
      return "symptom";
    case SemType::kPerson:
      return "person";
    case SemType::kPlace:
      return "place";
    case SemType::kOrganization:
      return "organization";
    case SemType::kMeasurement:
      return "measurement";
    case SemType::kDate:
      return "date";
  }
  return "?";
}

namespace {

struct SeedEntry {
  const char* term;
  SemType type;
};

// Built-in seed lexicon. The dataset generators (src/datagen) register
// their full entity catalogs on top of this.
constexpr SeedEntry kSeedLexicon[] = {
    // diseases
    {"colorectal cancer", SemType::kDisease},
    {"colon cancer", SemType::kDisease},
    {"colon", SemType::kDisease},
    {"covid-19", SemType::kDisease},
    {"covid", SemType::kDisease},
    {"influenza", SemType::kDisease},
    {"diabetes", SemType::kDisease},
    {"hypertension", SemType::kDisease},
    {"melanoma", SemType::kDisease},
    {"leukemia", SemType::kDisease},
    {"pneumonia", SemType::kDisease},
    {"asthma", SemType::kDisease},
    // drugs
    {"ramucirumab", SemType::kDrug},
    {"fluoropyrimidine", SemType::kDrug},
    {"irinotecan", SemType::kDrug},
    {"oxaliplatin", SemType::kDrug},
    {"bevacizumab", SemType::kDrug},
    {"cetuximab", SemType::kDrug},
    {"aspirin", SemType::kDrug},
    {"metformin", SemType::kDrug},
    {"remdesivir", SemType::kDrug},
    {"paxlovid", SemType::kDrug},
    // chemicals
    {"sodium chloride", SemType::kChemical},
    {"glucose", SemType::kChemical},
    {"ethanol", SemType::kChemical},
    {"nitrogen", SemType::kChemical},
    {"oxygen", SemType::kChemical},
    {"hemoglobin", SemType::kChemical},
    // vaccines
    {"moderna", SemType::kVaccine},
    {"covaxin", SemType::kVaccine},
    {"pfizer", SemType::kVaccine},
    {"biontech", SemType::kVaccine},
    {"astrazeneca", SemType::kVaccine},
    {"sputnik v", SemType::kVaccine},
    {"novavax", SemType::kVaccine},
    // treatments
    {"chemotherapy", SemType::kTreatment},
    {"radiotherapy", SemType::kTreatment},
    {"immunotherapy", SemType::kTreatment},
    {"surgery", SemType::kTreatment},
    {"dialysis", SemType::kTreatment},
    {"transfusion", SemType::kTreatment},
    // symptoms
    {"fever", SemType::kSymptom},
    {"cough", SemType::kSymptom},
    {"fatigue", SemType::kSymptom},
    {"nausea", SemType::kSymptom},
    {"headache", SemType::kSymptom},
    {"diarrhea", SemType::kSymptom},
    // places
    {"florida", SemType::kPlace},
    {"tallahassee", SemType::kPlace},
    {"tampa", SemType::kPlace},
    {"new york", SemType::kPlace},
    {"london", SemType::kPlace},
    {"paris", SemType::kPlace},
    {"tokyo", SemType::kPlace},
    {"texas", SemType::kPlace},
    {"california", SemType::kPlace},
    // organizations
    {"fda", SemType::kOrganization},
    {"who", SemType::kOrganization},
    {"cdc", SemType::kOrganization},
    {"nih", SemType::kOrganization},
    {"pubmed", SemType::kOrganization},
};

const char* kMonths[] = {"january", "february", "march",     "april",
                         "may",     "june",     "july",      "august",
                         "september", "october", "november", "december",
                         "jan", "feb", "mar", "apr", "jun", "jul", "aug",
                         "sep", "oct", "nov", "dec"};

bool LooksLikeDate(const std::string& lower) {
  // "2021-03-15", "03/15/2021", "15 march 2021", "march 2021".
  int digits = 0, seps = 0;
  for (char c : lower) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    if (c == '/' || c == '-') ++seps;
  }
  if (digits >= 4 && seps == 2) return true;
  for (const char* m : kMonths) {
    if (lower.find(m) != std::string::npos && digits >= 2) return true;
  }
  return false;
}

bool LooksLikePersonName(const std::string& original) {
  // Two capitalized alphabetic words ("John Smith").
  auto words = SplitWhitespace(original);
  if (words.size() != 2) return false;
  for (const auto& w : words) {
    if (w.size() < 2) return false;
    if (!std::isupper(static_cast<unsigned char>(w[0]))) return false;
    for (size_t i = 1; i < w.size(); ++i) {
      if (!std::islower(static_cast<unsigned char>(w[i]))) return false;
    }
  }
  return true;
}

}  // namespace

TypeInferencer::TypeInferencer() {
  for (const auto& entry : kSeedLexicon) {
    lexicon_.emplace(entry.term, entry.type);
  }
}

void TypeInferencer::AddTerm(std::string_view term, SemType type) {
  lexicon_[ToLower(Trim(term))] = type;
}

void TypeInferencer::Serialize(BinaryWriter* w) const {
  std::vector<std::pair<std::string, SemType>> entries(lexicon_.begin(),
                                                       lexicon_.end());
  std::sort(entries.begin(), entries.end());
  w->WriteU64(entries.size());
  for (const auto& [term, type] : entries) {
    w->WriteString(term);
    w->WriteI32(static_cast<int32_t>(type));
  }
}

Result<TypeInferencer> TypeInferencer::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  TypeInferencer typer;
  typer.lexicon_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    TABBIN_ASSIGN_OR_RETURN(std::string term, r->ReadString());
    TABBIN_ASSIGN_OR_RETURN(int32_t type, r->ReadI32());
    if (type < 0 || type >= kNumSemTypes) {
      return Status::ParseError("TypeInferencer: unknown semantic type id");
    }
    typer.lexicon_[term] = static_cast<SemType>(type);
  }
  return typer;
}

SemType TypeInferencer::Infer(const Value& value) const {
  switch (value.kind()) {
    case ValueKind::kEmpty:
      return SemType::kText;
    case ValueKind::kNumber:
      return value.has_unit() ? SemType::kMeasurement : SemType::kNumeric;
    case ValueKind::kRange:
      return SemType::kRange;
    case ValueKind::kGaussian:
      return SemType::kMeasurement;
    case ValueKind::kString:
      return InferText(value.text());
  }
  return SemType::kText;
}

SemType TypeInferencer::InferText(std::string_view text) const {
  const std::string original = Trim(text);
  const std::string lower = ToLower(original);
  if (lower.empty()) return SemType::kText;
  auto it = lexicon_.find(lower);
  if (it != lexicon_.end()) return it->second;
  if (LooksLikeDate(lower)) return SemType::kDate;
  if (IsNumericString(lower)) return SemType::kNumeric;
  // Try individual words for multi-word strings ("metastatic colon cancer").
  for (const auto& w : SplitWhitespace(lower)) {
    auto wit = lexicon_.find(w);
    if (wit != lexicon_.end()) return wit->second;
  }
  if (LooksLikePersonName(original)) return SemType::kPerson;
  return SemType::kText;
}

}  // namespace tabbin
