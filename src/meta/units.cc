#include "meta/units.h"

#include <unordered_map>

#include "util/string_util.h"

namespace tabbin {

namespace {

const std::unordered_map<std::string, UnitMatch>& UnitLexicon() {
  static const auto* lexicon = new std::unordered_map<std::string, UnitMatch>{
      // stats
      {"%", {UnitCategory::kStats, "%"}},
      {"percent", {UnitCategory::kStats, "%"}},
      {"percentage", {UnitCategory::kStats, "%"}},
      {"ratio", {UnitCategory::kStats, "ratio"}},
      {"mean", {UnitCategory::kStats, "mean"}},
      {"median", {UnitCategory::kStats, "median"}},
      {"sd", {UnitCategory::kStats, "sd"}},
      {"ci", {UnitCategory::kStats, "ci"}},
      {"iqr", {UnitCategory::kStats, "iqr"}},
      {"hr", {UnitCategory::kStats, "hr"}},    // hazard ratio
      {"or", {UnitCategory::kStats, "or"}},    // odds ratio
      {"rr", {UnitCategory::kStats, "rr"}},    // relative risk
      {"fold", {UnitCategory::kStats, "fold"}},
      // length
      {"mm", {UnitCategory::kLength, "mm"}},
      {"cm", {UnitCategory::kLength, "cm"}},
      {"m", {UnitCategory::kLength, "m"}},
      {"km", {UnitCategory::kLength, "km"}},
      {"in", {UnitCategory::kLength, "in"}},
      {"inch", {UnitCategory::kLength, "in"}},
      {"ft", {UnitCategory::kLength, "ft"}},
      {"mile", {UnitCategory::kLength, "mile"}},
      // weight
      {"ng", {UnitCategory::kWeight, "ng"}},
      {"ug", {UnitCategory::kWeight, "ug"}},
      {"mcg", {UnitCategory::kWeight, "ug"}},
      {"mg", {UnitCategory::kWeight, "mg"}},
      {"g", {UnitCategory::kWeight, "g"}},
      {"kg", {UnitCategory::kWeight, "kg"}},
      {"lb", {UnitCategory::kWeight, "lb"}},
      {"ton", {UnitCategory::kWeight, "ton"}},
      // capacity
      {"ml", {UnitCategory::kCapacity, "ml"}},
      {"dl", {UnitCategory::kCapacity, "dl"}},
      {"l", {UnitCategory::kCapacity, "l"}},
      {"liter", {UnitCategory::kCapacity, "l"}},
      {"litre", {UnitCategory::kCapacity, "l"}},
      {"gal", {UnitCategory::kCapacity, "gal"}},
      {"gallon", {UnitCategory::kCapacity, "gal"}},
      // time
      {"s", {UnitCategory::kTime, "s"}},
      {"sec", {UnitCategory::kTime, "s"}},
      {"second", {UnitCategory::kTime, "s"}},
      {"min", {UnitCategory::kTime, "min"}},
      {"minute", {UnitCategory::kTime, "min"}},
      {"h", {UnitCategory::kTime, "h"}},
      {"hour", {UnitCategory::kTime, "h"}},
      {"day", {UnitCategory::kTime, "day"}},
      {"week", {UnitCategory::kTime, "week"}},
      {"wk", {UnitCategory::kTime, "week"}},
      {"month", {UnitCategory::kTime, "month"}},
      {"mo", {UnitCategory::kTime, "month"}},
      {"year", {UnitCategory::kTime, "year"}},
      {"yr", {UnitCategory::kTime, "year"}},
      // temperature
      {"c", {UnitCategory::kTemperature, "c"}},
      {"°c", {UnitCategory::kTemperature, "c"}},
      {"f", {UnitCategory::kTemperature, "f"}},
      {"°f", {UnitCategory::kTemperature, "f"}},
      {"k", {UnitCategory::kTemperature, "k"}},
      {"kelvin", {UnitCategory::kTemperature, "k"}},
      {"celsius", {UnitCategory::kTemperature, "c"}},
      {"fahrenheit", {UnitCategory::kTemperature, "f"}},
      // pressure
      {"mmhg", {UnitCategory::kPressure, "mmhg"}},
      {"kpa", {UnitCategory::kPressure, "kpa"}},
      {"pa", {UnitCategory::kPressure, "pa"}},
      {"bar", {UnitCategory::kPressure, "bar"}},
      {"psi", {UnitCategory::kPressure, "psi"}},
      {"atm", {UnitCategory::kPressure, "atm"}},
  };
  return *lexicon;
}

}  // namespace

std::optional<UnitMatch> RecognizeUnit(std::string_view token) {
  std::string t = ToLower(Trim(token));
  if (t.empty()) return std::nullopt;
  // Strip trailing period ("mo.") then try exact, then singular form.
  if (t.back() == '.') t.pop_back();
  const auto& lex = UnitLexicon();
  auto it = lex.find(t);
  if (it != lex.end()) return it->second;
  if (t.size() > 1 && t.back() == 's') {
    it = lex.find(t.substr(0, t.size() - 1));
    if (it != lex.end()) return it->second;
  }
  return std::nullopt;
}

bool IsStatsMarker(std::string_view token) {
  auto m = RecognizeUnit(token);
  return m.has_value() && m->category == UnitCategory::kStats;
}

}  // namespace tabbin
