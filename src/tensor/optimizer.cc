#include "tensor/optimizer.h"

#include <cmath>

namespace tabbin {

AdamOptimizer::AdamOptimizer(ParameterMap params, Options options)
    : options_(options) {
  slots_.reserve(params.size());
  for (auto& [name, t] : params) {
    Slot slot;
    slot.param = t;
    slot.m.assign(t.size(), 0.0f);
    slot.v.assign(t.size(), 0.0f);
    slots_.push_back(std::move(slot));
  }
}

void AdamOptimizer::Step() {
  ++t_;
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));

  float clip_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double total = 0.0;
    for (auto& slot : slots_) {
      const auto& g = slot.param.grad_vec();
      for (float gv : g) total += static_cast<double>(gv) * gv;
    }
    const float norm = static_cast<float>(std::sqrt(total));
    if (norm > options_.clip_norm) clip_scale = options_.clip_norm / norm;
  }

  for (auto& slot : slots_) {
    float* w = slot.param.data();
    const float* g = slot.param.grad();
    for (size_t i = 0; i < slot.param.size(); ++i) {
      const float gi = g[i] * clip_scale;
      slot.m[i] = b1 * slot.m[i] + (1.0f - b1) * gi;
      slot.v[i] = b2 * slot.v[i] + (1.0f - b2) * gi * gi;
      const float mhat = slot.m[i] / bias1;
      const float vhat = slot.v[i] / bias2;
      w[i] -= options_.lr *
              (mhat / (std::sqrt(vhat) + options_.eps) +
               options_.weight_decay * w[i]);
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (auto& slot : slots_) slot.param.ZeroGrad();
}

SgdOptimizer::SgdOptimizer(ParameterMap params, float lr) : lr_(lr) {
  params_.reserve(params.size());
  for (auto& [name, t] : params) params_.push_back(t);
}

void SgdOptimizer::Step() {
  for (auto& p : params_) {
    float* w = p.data();
    const float* g = p.grad();
    for (size_t i = 0; i < p.size(); ++i) w[i] -= lr_ * g[i];
  }
}

void SgdOptimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

}  // namespace tabbin
