// A small dense float tensor with reverse-mode automatic differentiation.
//
// This is the training substrate standing in for libtorch (see DESIGN.md,
// substitution S1). Tensors are reference-counted views onto a TensorImpl
// node; differentiable operations (tensor/ops.h) record backward closures
// into the implicit tape, and Tensor::Backward() replays them in reverse
// topological order.
//
// Supported ranks are 1 and 2; the transformer stack only needs matrices
// of activations [seq_len, hidden] and attention score matrices
// [seq_len, seq_len].
#ifndef TABBIN_TENSOR_TENSOR_H_
#define TABBIN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tabbin {

class Tensor;

namespace internal {

/// \brief Heap node shared by Tensor handles; owns data, grad and tape edge.
struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> data;
  std::vector<float> grad;  // lazily sized; empty until needed
  bool requires_grad = false;
  // Parents in the autograd graph and the closure that propagates this
  // node's grad into them.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;

  size_t size() const {
    size_t n = 1;
    for (int d : shape) n *= static_cast<size_t>(d);
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != size()) grad.assign(size(), 0.0f);
  }
};

}  // namespace internal

/// \brief RAII guard that disables autograd tape recording (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// \brief True when tape recording is currently enabled.
  static bool GradEnabled();

 private:
  bool prev_;
};

/// \brief Reference-counted handle to a tensor node.
class Tensor {
 public:
  /// Null handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// \brief All-zeros tensor of the given shape.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  /// \brief All-`value` tensor.
  static Tensor Full(std::vector<int> shape, float value,
                     bool requires_grad = false);
  /// \brief Tensor adopting the given row-major data.
  static Tensor FromData(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad = false);
  /// \brief Gaussian-initialized tensor (mean 0). A null `rng` defers
  /// initialization and leaves the tensor zero — for parameters a
  /// deserializer is about to overwrite, where drawing the random
  /// values would be pure load-time waste.
  static Tensor Randn(std::vector<int> shape, Rng* rng, float stddev,
                      bool requires_grad = false);
  /// \brief Uniform(-bound, bound) initialized tensor (zero when `rng`
  /// is null, as with Randn).
  static Tensor RandUniform(std::vector<int> shape, Rng* rng, float bound,
                            bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  int ndim() const { return static_cast<int>(impl_->shape.size()); }
  int dim(int i) const { return impl_->shape[static_cast<size_t>(i)]; }
  const std::vector<int>& shape() const { return impl_->shape; }
  size_t size() const { return impl_->size(); }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  std::vector<float>& vec() { return impl_->data; }
  const std::vector<float>& vec() const { return impl_->data; }

  /// \brief Element accessors for 1-D / 2-D tensors.
  float at(int i) const { return impl_->data[static_cast<size_t>(i)]; }
  float at(int r, int c) const {
    return impl_->data[static_cast<size_t>(r) * dim(1) + c];
  }
  void set(int i, float v) { impl_->data[static_cast<size_t>(i)] = v; }
  void set(int r, int c, float v) {
    impl_->data[static_cast<size_t>(r) * dim(1) + c] = v;
  }

  bool requires_grad() const { return impl_->requires_grad; }
  /// \brief Gradient buffer (allocated on demand).
  float* grad() {
    impl_->EnsureGrad();
    return impl_->grad.data();
  }
  const std::vector<float>& grad_vec() {
    impl_->EnsureGrad();
    return impl_->grad;
  }
  void ZeroGrad() {
    if (!impl_->grad.empty()) {
      std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
    }
  }

  /// \brief Runs reverse-mode autodiff from this node.
  ///
  /// If the tensor is scalar-shaped its grad is seeded with 1; otherwise
  /// the caller must have filled grad() already.
  void Backward();

  /// \brief Detaches from the tape: same data, no history, no grad.
  Tensor Detach() const;

  /// \brief Deep copy of data (no autograd history).
  Tensor Clone() const;

  std::string ShapeString() const;

  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

/// \brief Creates an output node wired to `parents` with `backward_fn`.
///
/// Used by every differentiable op. When autograd is disabled or no parent
/// requires grad, the edge is dropped and the node is a plain buffer.
Tensor MakeOpOutput(std::vector<int> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void()> backward_fn);

}  // namespace tabbin

#endif  // TABBIN_TENSOR_TENSOR_H_
