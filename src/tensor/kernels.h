// Runtime-dispatched SIMD kernel layer.
//
// Every dense distance computation in the codebase — exact cosine
// re-ranking in the serving shards, LSH hashing, clustering, RAG dense
// retrieval, and the encoder's MatMul — bottoms out in the primitives
// below. They are selected ONCE per process (cpuid on x86, compile
// target on aarch64) and then called through resolved function
// pointers, so every caller in the process computes with the same
// floating-point contraction behaviour:
//
//   * AVX2+FMA  on x86-64 hardware that supports it,
//   * NEON      on aarch64,
//   * portable scalar everywhere else, or when the environment variable
//     TABBIN_FORCE_SCALAR=1 is set (CI runs the full suite this way so
//     the fallback path cannot rot).
//
// Determinism contract: within one process the active level never
// changes, every kernel is deterministic for fixed inputs, and the
// batched variants perform bit-identical per-row arithmetic to their
// pairwise counterparts (BatchedCosineRows over row r equals
// CosineSimilarity(query, row_r) exactly). This is what preserves the
// serving layer's N-shard == 1-shard byte-identical equivalence: all
// shards, the single-shard service, and every test oracle score through
// the same kernel table. Across dispatch levels results differ by
// rounding only (FMA contraction, vectorized accumulation order);
// tests/kernels_test.cc bounds the divergence.
#ifndef TABBIN_TENSOR_KERNELS_H_
#define TABBIN_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace tabbin {
namespace kernels {

enum class Dispatch { kScalar, kAvx2, kNeon };

/// \brief Pure capability probe: the level that would be selected given
/// `force_scalar`. No global state — tests use it to assert that
/// TABBIN_FORCE_SCALAR actually changes the outcome.
Dispatch Detect(bool force_scalar);

/// \brief The process-wide level, resolved once on first use from the
/// hardware and the TABBIN_FORCE_SCALAR environment variable.
Dispatch Active();

const char* DispatchName(Dispatch d);
inline const char* ActiveName() { return DispatchName(Active()); }

// --- Primitives (active dispatch level) --------------------------------

/// \brief sum_i a[i] * b[i].
float Dot(const float* a, const float* b, size_t n);

/// \brief sum_i x[i]^2. Bit-identical to Dot(x, x, n).
float SquaredNorm(const float* x, size_t n);

/// \brief 1 / sqrt(SquaredNorm(x)), or 0 for the zero vector. The
/// cached per-row inverse norms in EmbeddingMatrix are produced by this
/// exact function, so a cached value and a freshly computed one are the
/// same bits.
float InvNorm(const float* x, size_t n);

/// \brief y[i] += a * x[i].
void Axpy(float a, const float* x, float* y, size_t n);

/// \brief out[r] = Dot(m + r * cols, q) for r in [0, nrows) — one
/// matrix-vector product over contiguous rows (LSH hashing against the
/// flat hyperplane block).
void MatVec(const float* m, size_t nrows, size_t cols, const float* q,
            float* out);

/// \brief out[i] = Dot(q, m + rows[i] * cols): gathered batched dots
/// over an arbitrary row subset — the norm-independent building block
/// under BatchedCosineRows, for callers that need raw inner products
/// (e.g. maximum-inner-product scoring) rather than cosines.
void BatchedDotRows(const float* q, const float* m, size_t cols,
                    const int* rows, size_t nrows, float* out);

/// \brief out[i] = (Dot(q, row_i) * inv_q) * row_inv_norms[rows[i]]
/// where row_i = m + rows[i] * cols. With inv_q = InvNorm(q) and cached
/// row norms this is bit-identical to CosineSimilarity(q, row_i) — the
/// norm-free batched candidate-scoring pass of the serving layer.
void BatchedCosineRows(const float* q, float inv_q, const float* m,
                       size_t cols, const int* rows, size_t nrows,
                       const float* row_inv_norms, float* out);

/// \brief C += A * B for row-major A [n, k], B [k, m], C [n, m].
/// Accumulates — the caller zeroes C for a plain product. Per output
/// element the k-dimension accumulates in ascending order at every
/// dispatch level, so results are deterministic for a fixed level.
void Gemm(const float* A, const float* B, float* C, int n, int k, int m);

// --- Int8 scalar-quantized tier ----------------------------------------
// The fast first-pass scorer behind the two-stage scan -> rerank query
// path: embedding rows are stored a second time as per-row affine int8
// codes (x_i ~= scale * (code_i - zero)), queries quantize symmetrically
// once per scan, and candidate scoring becomes an integer dot over 1/4
// of the bytes. Unlike the float kernels, the integer dot is EXACT:
// every dispatch level accumulates the same int32, so the quantized
// scan is bit-identical across scalar/AVX2/NEON — only the final float
// combine (a fixed-order expression evaluated once, outside the
// kernels) carries rounding at all.
//
// Range contract (what makes the AVX2 path both fast and exact):
//   - row codes stay in [-127, 127]; -128 is never emitted, so negation
//     and widening tricks cannot overflow, and the int32 accumulator is
//     exact for any n <= 130000 (127 * 127 * n < 2^31);
//   - query codes stay in [-63, 63] (QuantizeSymmetric enforces this).
//     With rows shifted to unsigned ([1, 255]) the vpmaddubsw pair sums
//     are bounded by 2 * 255 * 63 = 32130 < 32767 — the classic
//     maddubs saturation trap is impossible by construction, and one
//     exact integer correction (128 * query code sum) undoes the shift.
//     The query spends one precision bit to let the scan eat 32 codes
//     per instruction; rows (the side that costs memory) keep all 8.

/// \brief Per-row affine quantization parameters: x ~= scale * (code -
/// zero). `zero` is an integer so the dot-product correction term
/// (idot - zero * query_code_sum) stays in exact integer arithmetic.
struct RowQuantParams {
  float scale = 1.0f;
  int32_t zero = 0;
};

/// \brief Encodes one row with per-row min/max affine parameters.
/// Deterministic scalar code (not dispatched): codes are data, and data
/// must not depend on the hardware that produced it. out holds n codes.
RowQuantParams QuantizeRowAffine(const float* x, size_t n, int8_t* out);

/// \brief Symmetric query-side quantization: q_i ~= scale * code_i,
/// plus the code sum the affine correction term needs. scale == 0 for
/// the zero vector (all codes 0). Codes stay in [-63, 63] — the range
/// the AVX2 maddubs scan path requires (see the contract above).
struct QueryQuantParams {
  float scale = 0.0f;
  int32_t code_sum = 0;
};
QueryQuantParams QuantizeSymmetric(const float* x, size_t n, int8_t* out);

/// \brief sum_i a[i] * b[i] in exact int32 arithmetic — the same value
/// at every dispatch level (integer addition is associative). The
/// operands are NOT symmetric: `a` is the query side and must obey the
/// [-63, 63] query range (the AVX2 path shifts `b` to unsigned and
/// uses vpmaddubsw, which only the bounded query keeps saturation-free);
/// `b` may use the full [-127, 127] row range. NEON uses vmull_s8 +
/// pairwise accumulate, which is exact for any int8 inputs.
int32_t QuantizedDot(const int8_t* a, const int8_t* b, size_t n);

/// \brief out[i] = QuantizedDot(q, codes + rows[i] * cols): the
/// gathered batched form of the scan, mirroring BatchedDotRows.
void BatchedQuantizedDotRows(const int8_t* q, const int8_t* codes,
                             size_t cols, const int* rows, size_t nrows,
                             int32_t* out);

// --- Explicit-level variants -------------------------------------------
// For tests (SIMD vs scalar agreement) and the perf report. Calling a
// level the hardware does not support is undefined; guard with
// Detect(false).
float DotAt(Dispatch d, const float* a, const float* b, size_t n);
float SquaredNormAt(Dispatch d, const float* x, size_t n);
void AxpyAt(Dispatch d, float a, const float* x, float* y, size_t n);
void GemmAt(Dispatch d, const float* A, const float* B, float* C, int n,
            int k, int m);
void MatVecAt(Dispatch d, const float* m, size_t nrows, size_t cols,
              const float* q, float* out);
void BatchedCosineRowsAt(Dispatch d, const float* q, float inv_q,
                         const float* m, size_t cols, const int* rows,
                         size_t nrows, const float* row_inv_norms,
                         float* out);
int32_t QuantizedDotAt(Dispatch d, const int8_t* a, const int8_t* b,
                       size_t n);

}  // namespace kernels
}  // namespace tabbin

#endif  // TABBIN_TENSOR_KERNELS_H_
