#include "tensor/kernels.h"

#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define TABBIN_KERNELS_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define TABBIN_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace tabbin {
namespace kernels {

namespace {

// --- Portable scalar ----------------------------------------------------
// Single-accumulator loops, no reassociation: the compiler may not
// vectorize a strict-FP reduction, so this is the deterministic
// reference every SIMD level is tested against.

float DotScalar(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyScalar(float a, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void GemmScalar(const float* A, const float* B, float* C, int n, int k,
                int m) {
  // ikj order: C's row is the accumulator, B is streamed row-wise.
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = B + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

#if TABBIN_KERNELS_X86

// --- AVX2 + FMA ---------------------------------------------------------
// Compiled with per-function target attributes so the translation unit
// itself stays buildable for the x86-64 baseline; these bodies only run
// after the cpuid probe in Detect() says the hardware has avx2+fma.

__attribute__((target("avx2,fma"))) float HSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b,
                                                  size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float a, const float* x,
                                                  float* y, size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2,fma"))) void GemmAvx2(const float* A,
                                                   const float* B, float* C,
                                                   int n, int k, int m) {
  // Register-blocked rank-4 update: four broadcast A values stream four
  // B rows through one C row per pass. Per C element the k dimension
  // still accumulates in ascending order (a0, a1, a2, a3 chain
  // sequentially into the same register), so the result is
  // deterministic for this level.
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const __m256 a0 = _mm256_set1_ps(arow[kk]);
      const __m256 a1 = _mm256_set1_ps(arow[kk + 1]);
      const __m256 a2 = _mm256_set1_ps(arow[kk + 2]);
      const __m256 a3 = _mm256_set1_ps(arow[kk + 3]);
      const float* b0 = B + static_cast<size_t>(kk) * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      int j = 0;
      for (; j + 8 <= m; j += 8) {
        __m256 c = _mm256_loadu_ps(crow + j);
        c = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b0 + j), c);
        c = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b1 + j), c);
        c = _mm256_fmadd_ps(a2, _mm256_loadu_ps(b2 + j), c);
        c = _mm256_fmadd_ps(a3, _mm256_loadu_ps(b3 + j), c);
        _mm256_storeu_ps(crow + j, c);
      }
      for (; j < m; ++j) {
        float c = crow[j];
        c += arow[kk] * b0[j];
        c += arow[kk + 1] * b1[j];
        c += arow[kk + 2] * b2[j];
        c += arow[kk + 3] * b3[j];
        crow[j] = c;
      }
    }
    for (; kk < k; ++kk) {
      const __m256 av = _mm256_set1_ps(arow[kk]);
      const float* brow = B + static_cast<size_t>(kk) * m;
      int j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                         _mm256_loadu_ps(crow + j)));
      }
      for (; j < m; ++j) crow[j] += arow[kk] * brow[j];
    }
  }
}

#endif  // TABBIN_KERNELS_X86

#if TABBIN_KERNELS_NEON

// --- NEON (aarch64) -----------------------------------------------------
// Advanced SIMD is mandatory on aarch64, so no runtime probe is needed.

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyNeon(float a, const float* x, float* y, size_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void GemmNeon(const float* A, const float* B, float* C, int n, int k,
              int m) {
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float32x4_t a0 = vdupq_n_f32(arow[kk]);
      const float32x4_t a1 = vdupq_n_f32(arow[kk + 1]);
      const float32x4_t a2 = vdupq_n_f32(arow[kk + 2]);
      const float32x4_t a3 = vdupq_n_f32(arow[kk + 3]);
      const float* b0 = B + static_cast<size_t>(kk) * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      int j = 0;
      for (; j + 4 <= m; j += 4) {
        float32x4_t c = vld1q_f32(crow + j);
        c = vfmaq_f32(c, a0, vld1q_f32(b0 + j));
        c = vfmaq_f32(c, a1, vld1q_f32(b1 + j));
        c = vfmaq_f32(c, a2, vld1q_f32(b2 + j));
        c = vfmaq_f32(c, a3, vld1q_f32(b3 + j));
        vst1q_f32(crow + j, c);
      }
      for (; j < m; ++j) {
        float c = crow[j];
        c += arow[kk] * b0[j];
        c += arow[kk + 1] * b1[j];
        c += arow[kk + 2] * b2[j];
        c += arow[kk + 3] * b3[j];
        crow[j] = c;
      }
    }
    for (; kk < k; ++kk) {
      const float32x4_t av = vdupq_n_f32(arow[kk]);
      const float* brow = B + static_cast<size_t>(kk) * m;
      int j = 0;
      for (; j + 4 <= m; j += 4) {
        vst1q_f32(crow + j,
                  vfmaq_f32(vld1q_f32(crow + j), av, vld1q_f32(brow + j)));
      }
      for (; j < m; ++j) crow[j] += arow[kk] * brow[j];
    }
  }
}

#endif  // TABBIN_KERNELS_NEON

// --- Dispatch table -----------------------------------------------------

struct KernelTable {
  float (*dot)(const float*, const float*, size_t);
  void (*axpy)(float, const float*, float*, size_t);
  void (*gemm)(const float*, const float*, float*, int, int, int);
};

constexpr KernelTable kScalarTable = {DotScalar, AxpyScalar, GemmScalar};

const KernelTable& TableFor(Dispatch d) {
#if TABBIN_KERNELS_X86
  static constexpr KernelTable kAvx2Table = {DotAvx2, AxpyAvx2, GemmAvx2};
  if (d == Dispatch::kAvx2) return kAvx2Table;
#endif
#if TABBIN_KERNELS_NEON
  static constexpr KernelTable kNeonTable = {DotNeon, AxpyNeon, GemmNeon};
  if (d == Dispatch::kNeon) return kNeonTable;
#endif
  (void)d;
  return kScalarTable;
}

const KernelTable& ActiveTable() {
  static const KernelTable* table = &TableFor(Active());
  return *table;
}

}  // namespace

Dispatch Detect(bool force_scalar) {
  if (force_scalar) return Dispatch::kScalar;
#if TABBIN_KERNELS_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Dispatch::kAvx2;
  }
#endif
#if TABBIN_KERNELS_NEON
  return Dispatch::kNeon;
#endif
  return Dispatch::kScalar;
}

Dispatch Active() {
  // Resolved exactly once: the whole process computes at one level, the
  // precondition for the serving layer's byte-identical equivalences.
  static const Dispatch level = [] {
    const char* env = std::getenv("TABBIN_FORCE_SCALAR");
    return Detect(env != nullptr && env[0] == '1' && env[1] == '\0');
  }();
  return level;
}

const char* DispatchName(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar:
      return "scalar";
    case Dispatch::kAvx2:
      return "avx2";
    case Dispatch::kNeon:
      return "neon";
  }
  return "unknown";
}

float Dot(const float* a, const float* b, size_t n) {
  return ActiveTable().dot(a, b, n);
}

float SquaredNorm(const float* x, size_t n) {
  // Literally Dot(x, x): one inner kernel means a cached norm and a
  // freshly computed one can never disagree.
  return ActiveTable().dot(x, x, n);
}

float InvNorm(const float* x, size_t n) {
  const float sq = SquaredNorm(x, n);
  return sq > 0.0f ? 1.0f / std::sqrt(sq) : 0.0f;
}

void Axpy(float a, const float* x, float* y, size_t n) {
  ActiveTable().axpy(a, x, y, n);
}

void MatVec(const float* m, size_t nrows, size_t cols, const float* q,
            float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t r = 0; r < nrows; ++r) out[r] = dot(m + r * cols, q, cols);
}

void BatchedDotRows(const float* q, const float* m, size_t cols,
                    const int* rows, size_t nrows, float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t i = 0; i < nrows; ++i) {
    out[i] = dot(q, m + static_cast<size_t>(rows[i]) * cols, cols);
  }
}

void BatchedCosineRows(const float* q, float inv_q, const float* m,
                       size_t cols, const int* rows, size_t nrows,
                       const float* row_inv_norms, float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t i = 0; i < nrows; ++i) {
    const size_t r = static_cast<size_t>(rows[i]);
    // (dot * inv_q) * inv_row — the exact expression CosineSimilarity
    // evaluates, in the same order, through the same dot kernel.
    out[i] = dot(q, m + r * cols, cols) * inv_q * row_inv_norms[r];
  }
}

void Gemm(const float* A, const float* B, float* C, int n, int k, int m) {
  ActiveTable().gemm(A, B, C, n, k, m);
}

float DotAt(Dispatch d, const float* a, const float* b, size_t n) {
  return TableFor(d).dot(a, b, n);
}

float SquaredNormAt(Dispatch d, const float* x, size_t n) {
  return TableFor(d).dot(x, x, n);
}

void AxpyAt(Dispatch d, float a, const float* x, float* y, size_t n) {
  TableFor(d).axpy(a, x, y, n);
}

void GemmAt(Dispatch d, const float* A, const float* B, float* C, int n,
            int k, int m) {
  TableFor(d).gemm(A, B, C, n, k, m);
}

}  // namespace kernels
}  // namespace tabbin
