#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#define TABBIN_KERNELS_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define TABBIN_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace tabbin {
namespace kernels {

namespace {

// --- Portable scalar ----------------------------------------------------
// Single-accumulator loops, no reassociation: the compiler may not
// vectorize a strict-FP reduction, so this is the deterministic
// reference every SIMD level is tested against.

float DotScalar(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyScalar(float a, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void GemmScalar(const float* A, const float* B, float* C, int n, int k,
                int m) {
  // ikj order: C's row is the accumulator, B is streamed row-wise.
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = B + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

int32_t QuantizedDotScalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

void BatchedQuantizedDotRowsScalar(const int8_t* q, const int8_t* codes,
                                   size_t cols, const int* rows, size_t nrows,
                                   int32_t* out) {
  for (size_t i = 0; i < nrows; ++i) {
    out[i] = QuantizedDotScalar(q, codes + static_cast<size_t>(rows[i]) * cols,
                                cols);
  }
}

#if TABBIN_KERNELS_X86

// --- AVX2 + FMA ---------------------------------------------------------
// Compiled with per-function target attributes so the translation unit
// itself stays buildable for the x86-64 baseline; these bodies only run
// after the cpuid probe in Detect() says the hardware has avx2+fma.

__attribute__((target("avx2,fma"))) float HSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b,
                                                  size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float a, const float* x,
                                                  float* y, size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2,fma"))) void GemmAvx2(const float* A,
                                                   const float* B, float* C,
                                                   int n, int k, int m) {
  // Register-blocked rank-4 update: four broadcast A values stream four
  // B rows through one C row per pass. Per C element the k dimension
  // still accumulates in ascending order (a0, a1, a2, a3 chain
  // sequentially into the same register), so the result is
  // deterministic for this level.
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const __m256 a0 = _mm256_set1_ps(arow[kk]);
      const __m256 a1 = _mm256_set1_ps(arow[kk + 1]);
      const __m256 a2 = _mm256_set1_ps(arow[kk + 2]);
      const __m256 a3 = _mm256_set1_ps(arow[kk + 3]);
      const float* b0 = B + static_cast<size_t>(kk) * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      int j = 0;
      for (; j + 8 <= m; j += 8) {
        __m256 c = _mm256_loadu_ps(crow + j);
        c = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b0 + j), c);
        c = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b1 + j), c);
        c = _mm256_fmadd_ps(a2, _mm256_loadu_ps(b2 + j), c);
        c = _mm256_fmadd_ps(a3, _mm256_loadu_ps(b3 + j), c);
        _mm256_storeu_ps(crow + j, c);
      }
      for (; j < m; ++j) {
        float c = crow[j];
        c += arow[kk] * b0[j];
        c += arow[kk + 1] * b1[j];
        c += arow[kk + 2] * b2[j];
        c += arow[kk + 3] * b3[j];
        crow[j] = c;
      }
    }
    for (; kk < k; ++kk) {
      const __m256 av = _mm256_set1_ps(arow[kk]);
      const float* brow = B + static_cast<size_t>(kk) * m;
      int j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                         _mm256_loadu_ps(crow + j)));
      }
      for (; j < m; ++j) crow[j] += arow[kk] * brow[j];
    }
  }
}

// Int8 dot via the unsigned-signed maddubs path, made exact by a range
// contract instead of hope: query codes stay within [-63, 63] (see
// QuantizeSymmetric), so after shifting row codes to unsigned with one
// XOR (row + 128, giving [1, 255]) every int16 pair sum is bounded by
// 2 * 255 * 63 = 32130 < 32767 — vpmaddubsw cannot saturate. The shift
// is undone with the exact integer correction
//   dot = maddubs_total - 128 * sum(query codes covered by maddubs);
// the sub-8 scalar tail multiplies raw codes, so its query codes are
// excluded from the correction sum. Everything accumulates in int32 and
// integer addition is associative, so the result equals the scalar loop
// bit for bit.
//
// Why not sign-extend both sides to int16 and vpmaddwd? That costs a
// shuffle-port cvt per 16 codes; maddubs eats 32 codes per instruction
// with one cheap XOR, roughly halving the port pressure per byte.

// Query-code prefix sum over the maddubs-covered lanes (multiples of 8).
inline int32_t QuerySumPrefix(const int8_t* q, size_t n8) {
  int32_t s = 0;
  for (size_t i = 0; i < n8; ++i) s += static_cast<int32_t>(q[i]);
  return s;
}

__attribute__((target("avx2"))) int32_t QuantizedDotAvx2(const int8_t* a,
                                                         const int8_t* b,
                                                         size_t n) {
  const __m256i k80 = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i ru = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), k80);
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(_mm256_maddubs_epi16(ru, qv), ones));
  }
  const __m128i k80s = _mm256_castsi256_si128(k80);
  const __m128i ones_s = _mm256_castsi256_si128(ones);
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  if (i + 16 <= n) {
    const __m128i qv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i ru = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), k80s);
    s = _mm_add_epi32(s, _mm_madd_epi16(_mm_maddubs_epi16(ru, qv), ones_s));
    i += 16;
  }
  if (i + 8 <= n) {
    // 64-bit loads zero the upper bytes: the query side stays 0 there,
    // so the (shifted) garbage lanes of the row side multiply to 0.
    const __m128i qv =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    const __m128i ru = _mm_xor_si128(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i)), k80s);
    s = _mm_add_epi32(s, _mm_madd_epi16(_mm_maddubs_epi16(ru, qv), ones_s));
    i += 8;
  }
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t sum = _mm_cvtsi128_si32(s) - 128 * QuerySumPrefix(a, i);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// The scan inner loop. Per-row costs the pairwise entry point pays are
// hoisted or restructured away:
//   - the query loads and its correction sum are shared across the call;
//   - rows run four at a time, amortizing loads and loop control and
//     hiding the maddubs latency behind four accumulators;
//   - the four horizontal sums collapse through one hadd tree into a
//     single 4-lane store (and the shared correction folds in with one
//     vector subtract).
__attribute__((target("avx2"))) void BatchedQuantizedDotRowsAvx2(
    const int8_t* q, const int8_t* codes, size_t cols, const int* rows,
    size_t nrows, int32_t* out) {
  const __m256i k80 = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i ones = _mm256_set1_epi16(1);
  const __m128i k80s = _mm256_castsi256_si128(k80);
  const __m128i ones_s = _mm256_castsi256_si128(ones);
  const size_t simd_cols = cols - cols % 8;
  const __m128i corr = _mm_set1_epi32(128 * QuerySumPrefix(q, simd_cols));

  size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const int8_t* row0 = codes + static_cast<size_t>(rows[r]) * cols;
    const int8_t* row1 = codes + static_cast<size_t>(rows[r + 1]) * cols;
    const int8_t* row2 = codes + static_cast<size_t>(rows[r + 2]) * cols;
    const int8_t* row3 = codes + static_cast<size_t>(rows[r + 3]) * cols;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 32 <= cols; i += 32) {
      const __m256i qv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(
                    _mm256_maddubs_epi16(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(row0 + i)),
                            k80),
                        qv),
                    ones));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(
                    _mm256_maddubs_epi16(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(row1 + i)),
                            k80),
                        qv),
                    ones));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(
                    _mm256_maddubs_epi16(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(row2 + i)),
                            k80),
                        qv),
                    ones));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(
                    _mm256_maddubs_epi16(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(row3 + i)),
                            k80),
                        qv),
                    ones));
    }
    if (i + 16 <= cols) {
      const __m128i qv =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              row0 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              row1 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              row2 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadu_si128(
                                          reinterpret_cast<const __m128i*>(
                                              row3 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      i += 16;
    }
    if (i + 8 <= cols) {
      // 64-bit loads zero the upper bytes; the query side stays 0 there,
      // so the shifted garbage lanes of the row side multiply to 0.
      const __m128i qv =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadl_epi64(
                                          reinterpret_cast<const __m128i*>(
                                              row0 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadl_epi64(
                                          reinterpret_cast<const __m128i*>(
                                              row1 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadl_epi64(
                                          reinterpret_cast<const __m128i*>(
                                              row2 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_zextsi128_si256(_mm_madd_epi16(
                    _mm_maddubs_epi16(
                        _mm_xor_si128(_mm_loadl_epi64(
                                          reinterpret_cast<const __m128i*>(
                                              row3 + i)),
                                      k80s),
                        qv),
                    ones_s)));
      i += 8;
    }
    // hadd tree: two in-lane levels then one cross-lane fold leave
    // [sum0, sum1, sum2, sum3] in one vector; the shared unsigned-shift
    // correction comes off all four lanes with one subtract.
    const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
    const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
    const __m256i h = _mm256_hadd_epi32(h01, h23);
    __m128i t = _mm_sub_epi32(
        _mm_add_epi32(_mm256_castsi256_si128(h),
                      _mm256_extracti128_si256(h, 1)),
        corr);
    if (i < cols) {
      int32_t tail[4] = {0, 0, 0, 0};
      for (; i < cols; ++i) {
        tail[0] += static_cast<int32_t>(row0[i]) * static_cast<int32_t>(q[i]);
        tail[1] += static_cast<int32_t>(row1[i]) * static_cast<int32_t>(q[i]);
        tail[2] += static_cast<int32_t>(row2[i]) * static_cast<int32_t>(q[i]);
        tail[3] += static_cast<int32_t>(row3[i]) * static_cast<int32_t>(q[i]);
      }
      t = _mm_add_epi32(
          t, _mm_loadu_si128(reinterpret_cast<const __m128i*>(tail)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r), t);
  }
  for (; r < nrows; ++r) {
    out[r] =
        QuantizedDotAvx2(q, codes + static_cast<size_t>(rows[r]) * cols, cols);
  }
}

#endif  // TABBIN_KERNELS_X86

#if TABBIN_KERNELS_NEON

// --- NEON (aarch64) -----------------------------------------------------
// Advanced SIMD is mandatory on aarch64, so no runtime probe is needed.

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyNeon(float a, const float* x, float* y, size_t n) {
  const float32x4_t av = vdupq_n_f32(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void GemmNeon(const float* A, const float* B, float* C, int n, int k,
              int m) {
  for (int i = 0; i < n; ++i) {
    const float* arow = A + static_cast<size_t>(i) * k;
    float* crow = C + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float32x4_t a0 = vdupq_n_f32(arow[kk]);
      const float32x4_t a1 = vdupq_n_f32(arow[kk + 1]);
      const float32x4_t a2 = vdupq_n_f32(arow[kk + 2]);
      const float32x4_t a3 = vdupq_n_f32(arow[kk + 3]);
      const float* b0 = B + static_cast<size_t>(kk) * m;
      const float* b1 = b0 + m;
      const float* b2 = b1 + m;
      const float* b3 = b2 + m;
      int j = 0;
      for (; j + 4 <= m; j += 4) {
        float32x4_t c = vld1q_f32(crow + j);
        c = vfmaq_f32(c, a0, vld1q_f32(b0 + j));
        c = vfmaq_f32(c, a1, vld1q_f32(b1 + j));
        c = vfmaq_f32(c, a2, vld1q_f32(b2 + j));
        c = vfmaq_f32(c, a3, vld1q_f32(b3 + j));
        vst1q_f32(crow + j, c);
      }
      for (; j < m; ++j) {
        float c = crow[j];
        c += arow[kk] * b0[j];
        c += arow[kk + 1] * b1[j];
        c += arow[kk + 2] * b2[j];
        c += arow[kk + 3] * b3[j];
        crow[j] = c;
      }
    }
    for (; kk < k; ++kk) {
      const float32x4_t av = vdupq_n_f32(arow[kk]);
      const float* brow = B + static_cast<size_t>(kk) * m;
      int j = 0;
      for (; j + 4 <= m; j += 4) {
        vst1q_f32(crow + j,
                  vfmaq_f32(vld1q_f32(crow + j), av, vld1q_f32(brow + j)));
      }
      for (; j < m; ++j) crow[j] += arow[kk] * brow[j];
    }
  }
}

// Int8 dot on NEON: vmull_s8 widens 8 x (s8 * s8) to int16 (max
// magnitude 127 * 127, no overflow), vpadalq_s16 pair-accumulates into
// int32 lanes. Exact integer arithmetic — bit-identical to the scalar
// loop. (sdot would need the optional DotProd extension; the widening
// form is baseline Advanced SIMD and exact everywhere.)
int32_t QuantizedDotNeon(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  for (; i + 8 <= n; i += 8) {
    acc = vpadalq_s16(acc, vmull_s8(vld1_s8(a + i), vld1_s8(b + i)));
  }
  int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// vmull_s8 already widens for free, so the NEON scan needs no query
// pre-widening — only the hoisted dispatch.
void BatchedQuantizedDotRowsNeon(const int8_t* q, const int8_t* codes,
                                 size_t cols, const int* rows, size_t nrows,
                                 int32_t* out) {
  for (size_t i = 0; i < nrows; ++i) {
    out[i] =
        QuantizedDotNeon(q, codes + static_cast<size_t>(rows[i]) * cols, cols);
  }
}

#endif  // TABBIN_KERNELS_NEON

// --- Dispatch table -----------------------------------------------------

struct KernelTable {
  float (*dot)(const float*, const float*, size_t);
  void (*axpy)(float, const float*, float*, size_t);
  void (*gemm)(const float*, const float*, float*, int, int, int);
  int32_t (*qdot)(const int8_t*, const int8_t*, size_t);
  void (*qdot_rows)(const int8_t*, const int8_t*, size_t, const int*, size_t,
                    int32_t*);
};

constexpr KernelTable kScalarTable = {DotScalar, AxpyScalar, GemmScalar,
                                      QuantizedDotScalar,
                                      BatchedQuantizedDotRowsScalar};

const KernelTable& TableFor(Dispatch d) {
#if TABBIN_KERNELS_X86
  static constexpr KernelTable kAvx2Table = {DotAvx2, AxpyAvx2, GemmAvx2,
                                             QuantizedDotAvx2,
                                             BatchedQuantizedDotRowsAvx2};
  if (d == Dispatch::kAvx2) return kAvx2Table;
#endif
#if TABBIN_KERNELS_NEON
  static constexpr KernelTable kNeonTable = {DotNeon, AxpyNeon, GemmNeon,
                                             QuantizedDotNeon,
                                             BatchedQuantizedDotRowsNeon};
  if (d == Dispatch::kNeon) return kNeonTable;
#endif
  (void)d;
  return kScalarTable;
}

const KernelTable& ActiveTable() {
  static const KernelTable* table = &TableFor(Active());
  return *table;
}

}  // namespace

Dispatch Detect(bool force_scalar) {
  if (force_scalar) return Dispatch::kScalar;
#if TABBIN_KERNELS_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Dispatch::kAvx2;
  }
#endif
#if TABBIN_KERNELS_NEON
  return Dispatch::kNeon;
#endif
  return Dispatch::kScalar;
}

Dispatch Active() {
  // Resolved exactly once: the whole process computes at one level, the
  // precondition for the serving layer's byte-identical equivalences.
  static const Dispatch level = [] {
    const char* env = std::getenv("TABBIN_FORCE_SCALAR");
    return Detect(env != nullptr && env[0] == '1' && env[1] == '\0');
  }();
  return level;
}

const char* DispatchName(Dispatch d) {
  switch (d) {
    case Dispatch::kScalar:
      return "scalar";
    case Dispatch::kAvx2:
      return "avx2";
    case Dispatch::kNeon:
      return "neon";
  }
  return "unknown";
}

float Dot(const float* a, const float* b, size_t n) {
  return ActiveTable().dot(a, b, n);
}

float SquaredNorm(const float* x, size_t n) {
  // Literally Dot(x, x): one inner kernel means a cached norm and a
  // freshly computed one can never disagree.
  return ActiveTable().dot(x, x, n);
}

float InvNorm(const float* x, size_t n) {
  const float sq = SquaredNorm(x, n);
  return sq > 0.0f ? 1.0f / std::sqrt(sq) : 0.0f;
}

void Axpy(float a, const float* x, float* y, size_t n) {
  ActiveTable().axpy(a, x, y, n);
}

void MatVec(const float* m, size_t nrows, size_t cols, const float* q,
            float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t r = 0; r < nrows; ++r) out[r] = dot(m + r * cols, q, cols);
}

void BatchedDotRows(const float* q, const float* m, size_t cols,
                    const int* rows, size_t nrows, float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t i = 0; i < nrows; ++i) {
    out[i] = dot(q, m + static_cast<size_t>(rows[i]) * cols, cols);
  }
}

void BatchedCosineRows(const float* q, float inv_q, const float* m,
                       size_t cols, const int* rows, size_t nrows,
                       const float* row_inv_norms, float* out) {
  const auto dot = ActiveTable().dot;
  for (size_t i = 0; i < nrows; ++i) {
    const size_t r = static_cast<size_t>(rows[i]);
    // (dot * inv_q) * inv_row — the exact expression CosineSimilarity
    // evaluates, in the same order, through the same dot kernel.
    out[i] = dot(q, m + r * cols, cols) * inv_q * row_inv_norms[r];
  }
}

void Gemm(const float* A, const float* B, float* C, int n, int k, int m) {
  ActiveTable().gemm(A, B, C, n, k, m);
}

RowQuantParams QuantizeRowAffine(const float* x, size_t n, int8_t* out) {
  RowQuantParams p;
  if (n == 0) return p;
  float lo = x[0], hi = x[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  if (hi == lo) {
    if (lo == 0.0f) {
      // Zero row: codes 0 decode to exactly 0 with any scale.
      for (size_t i = 0; i < n; ++i) out[i] = 0;
      return p;
    }
    // Constant row: one code value reproduces it exactly.
    p.scale = std::fabs(lo) / 127.0f;
    p.zero = 0;
    const int8_t c = lo > 0 ? 127 : -127;
    for (size_t i = 0; i < n; ++i) out[i] = c;
    return p;
  }
  // Affine map of [lo, hi] onto [-127, 127] (never -128: its negation
  // is not an int8, and keeping the range symmetric means saturating
  // extremes stay exactly representable).
  p.scale = (hi - lo) / 254.0f;
  const double inv_scale = 1.0 / static_cast<double>(p.scale);
  p.zero = static_cast<int32_t>(
      std::lround(-127.0 - static_cast<double>(lo) * inv_scale));
  for (size_t i = 0; i < n; ++i) {
    long c = std::lround(static_cast<double>(x[i]) * inv_scale) +
             static_cast<long>(p.zero);
    if (c < -127) c = -127;
    if (c > 127) c = 127;
    out[i] = static_cast<int8_t>(c);
  }
  return p;
}

QueryQuantParams QuantizeSymmetric(const float* x, size_t n, int8_t* out) {
  QueryQuantParams p;
  float amax = 0.0f;
  for (size_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  if (amax == 0.0f) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return p;  // scale 0: the zero query scores 0 everywhere, like cosine
  }
  // [-63, 63], not [-127, 127]: the reduced query range is what lets
  // the AVX2 scan use vpmaddubsw with zero saturation (see kernels.h).
  // Rows keep full 8-bit precision; the query loses one bit, which the
  // scan -> shortlist -> rerank contract absorbs (final scores are
  // float-exact regardless).
  p.scale = amax / 63.0f;
  const double inv_scale = 1.0 / static_cast<double>(p.scale);
  for (size_t i = 0; i < n; ++i) {
    long c = std::lround(static_cast<double>(x[i]) * inv_scale);
    if (c < -63) c = -63;
    if (c > 63) c = 63;
    out[i] = static_cast<int8_t>(c);
    p.code_sum += static_cast<int32_t>(out[i]);
  }
  return p;
}

int32_t QuantizedDot(const int8_t* a, const int8_t* b, size_t n) {
  return ActiveTable().qdot(a, b, n);
}

void BatchedQuantizedDotRows(const int8_t* q, const int8_t* codes,
                             size_t cols, const int* rows, size_t nrows,
                             int32_t* out) {
  ActiveTable().qdot_rows(q, codes, cols, rows, nrows, out);
}

float DotAt(Dispatch d, const float* a, const float* b, size_t n) {
  return TableFor(d).dot(a, b, n);
}

float SquaredNormAt(Dispatch d, const float* x, size_t n) {
  return TableFor(d).dot(x, x, n);
}

void AxpyAt(Dispatch d, float a, const float* x, float* y, size_t n) {
  TableFor(d).axpy(a, x, y, n);
}

void GemmAt(Dispatch d, const float* A, const float* B, float* C, int n,
            int k, int m) {
  TableFor(d).gemm(A, B, C, n, k, m);
}

void MatVecAt(Dispatch d, const float* m, size_t nrows, size_t cols,
              const float* q, float* out) {
  const auto dot = TableFor(d).dot;
  for (size_t r = 0; r < nrows; ++r) out[r] = dot(m + r * cols, q, cols);
}

void BatchedCosineRowsAt(Dispatch d, const float* q, float inv_q,
                         const float* m, size_t cols, const int* rows,
                         size_t nrows, const float* row_inv_norms,
                         float* out) {
  const auto dot = TableFor(d).dot;
  for (size_t i = 0; i < nrows; ++i) {
    const size_t r = static_cast<size_t>(rows[i]);
    out[i] = dot(q, m + r * cols, cols) * inv_q * row_inv_norms[r];
  }
}

int32_t QuantizedDotAt(Dispatch d, const int8_t* a, const int8_t* b,
                       size_t n) {
  return TableFor(d).qdot(a, b, n);
}

}  // namespace kernels
}  // namespace tabbin
