#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace tabbin {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(impl->size(), 0.0f);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  std::fill(t.vec().begin(), t.vec().end(), value);
  return t;
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> data,
                        bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  assert(impl->data.size() == impl->size() && "shape/data size mismatch");
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(std::vector<int> shape, Rng* rng, float stddev,
                     bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  if (rng == nullptr) return t;  // deferred init: stay zero
  for (auto& v : t.vec()) {
    v = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int> shape, Rng* rng, float bound,
                           bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  if (rng == nullptr) return t;  // deferred init: stay zero
  for (auto& v : t.vec()) {
    v = rng->UniformFloat(-bound, bound);
  }
  return t;
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

std::string Tensor::ShapeString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i) oss << ", ";
    oss << impl_->shape[i];
  }
  oss << "]";
  return oss.str();
}

void Tensor::Backward() {
  // Topological order via iterative post-order DFS over the tape.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  std::vector<std::pair<internal::TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      internal::TensorImpl* parent = node->parents[idx].get();
      ++idx;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  if (impl_->size() == 1) {
    impl_->grad[0] = 1.0f;
  }
  // `order` is post-order (parents before children); walk it backwards so
  // each node's backward_fn runs after all of its consumers contributed.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Tensor MakeOpOutput(std::vector<int> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void()> backward_fn) {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  assert(impl->data.size() == impl->size() && "shape/data size mismatch");
  bool any_grad = false;
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) any_grad = true;
  }
  if (NoGradGuard::GradEnabled() && any_grad) {
    impl->requires_grad = true;
    impl->parents.reserve(parents.size());
    for (auto& p : parents) impl->parents.push_back(p.impl());
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace tabbin
