// Flat row-major embedding storage.
//
// Every stage of the TabBiN pipeline after the encoder forward pass works
// on dense [n, d] blocks of float embeddings: segment hidden states,
// labeled embedding sets for clustering, LSH hyperplanes, RAG grounding
// matrices. EmbeddingMatrix keeps those blocks in one contiguous buffer
// (the same discipline a libtorch buffer uses) instead of a
// std::vector<std::vector<float>>, removing a heap allocation and a
// pointer chase per row from every hot loop.
//
// VecView is the row accessor: a non-owning span of const float. It
// converts implicitly from std::vector<float> so call sites can mix owned
// vectors (single composite embeddings) and matrix rows freely.
//
// Invariant: all rows of a matrix have the same width; AppendRow
// zero-pads or truncates to the established width so that ragged inputs
// cannot silently corrupt the layout.
#ifndef TABBIN_TENSOR_EMBEDDING_MATRIX_H_
#define TABBIN_TENSOR_EMBEDDING_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace tabbin {

/// \brief Non-owning read-only view over a contiguous float range.
class VecView {
 public:
  VecView() = default;
  VecView(const float* data, size_t size) : data_(data), size_(size) {}
  // Intentionally implicit: lets owned vectors flow into span-taking APIs
  // (ConcatEmbeddings, CosineSimilarity, LshIndex) without copies.
  VecView(const std::vector<float>& v) : data_(v.data()), size_(v.size()) {}

  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float operator[](size_t i) const { return data_[i]; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// \brief Materializes the view as an owned vector.
  std::vector<float> ToVector() const {
    return std::vector<float>(data_, data_ + size_);
  }

 private:
  const float* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Dense [rows, cols] float matrix with contiguous row-major
/// storage and O(1) row views.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        data_(rows * cols, 0.0f),
        // All-zero rows have inverse norm 0 by definition; callers that
        // fill rows through data() must RecomputeInvNorms().
        inv_norms_(rows, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }
  size_t size() const { return data_.size(); }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  VecView row(size_t r) const {
    return VecView(data_.data() + r * cols_, cols_);
  }
  float* mutable_row(size_t r) { return data_.data() + r * cols_; }

  /// \brief Replaces the contents with a rows x cols block copied from
  /// `src` (row-major, rows * cols floats).
  void Assign(size_t rows, size_t cols, const float* src);

  /// \brief Appends one row. The first append fixes the width; later rows
  /// are zero-padded / truncated to it.
  void AppendRow(VecView v);

  /// \brief Overwrites row `r` (copying min(cols, v.size()) floats,
  /// zero-padding the rest) and refreshes its cached inverse norm.
  void set_row(size_t r, VecView v);

  /// \brief Cached 1 / ||row r||_2 (0 for a zero row), produced by
  /// kernels::InvNorm — the same bits a fresh computation over the row
  /// yields. Maintained by Assign / AppendRow / set_row / Deserialize;
  /// code that mutates rows through mutable_row() or data() must call
  /// RecomputeInvNorms() before anyone reads the cache.
  float inv_norm(size_t r) const { return inv_norms_[r]; }
  const float* inv_norms() const { return inv_norms_.data(); }

  /// \brief Rebuilds the whole inverse-norm cache from the row data.
  void RecomputeInvNorms();

  /// \brief Pre-allocates storage for `rows` rows of the current width.
  void Reserve(size_t rows) {
    data_.reserve(rows * cols_);
    inv_norms_.reserve(rows);
  }

  void Clear() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
    inv_norms_.clear();
  }

  /// \brief Writes rows, cols and the flat data block. The inverse-norm
  /// cache is derived state and deliberately NOT serialized — the byte
  /// format predates it and must not change.
  void Serialize(BinaryWriter* w) const;

  /// \brief Inverse of Serialize; rejects inconsistent geometry (a data
  /// block whose length is not rows * cols) with a Status error. The
  /// inverse-norm cache is recomputed from the loaded rows.
  static Result<EmbeddingMatrix> Deserialize(BinaryReader* r);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  // inv_norms_[r] == kernels::InvNorm(row r); always rows_ entries.
  std::vector<float> inv_norms_;
};

}  // namespace tabbin

#endif  // TABBIN_TENSOR_EMBEDDING_MATRIX_H_
