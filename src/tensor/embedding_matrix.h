// Flat row-major embedding storage.
//
// Every stage of the TabBiN pipeline after the encoder forward pass works
// on dense [n, d] blocks of float embeddings: segment hidden states,
// labeled embedding sets for clustering, LSH hyperplanes, RAG grounding
// matrices. EmbeddingMatrix keeps those blocks in one contiguous buffer
// (the same discipline a libtorch buffer uses) instead of a
// std::vector<std::vector<float>>, removing a heap allocation and a
// pointer chase per row from every hot loop.
//
// VecView is the row accessor: a non-owning span of const float. It
// converts implicitly from std::vector<float> so call sites can mix owned
// vectors (single composite embeddings) and matrix rows freely.
//
// Invariant: all rows of a matrix have the same width; AppendRow
// zero-pads or truncates to the established width so that ragged inputs
// cannot silently corrupt the layout.
#ifndef TABBIN_TENSOR_EMBEDDING_MATRIX_H_
#define TABBIN_TENSOR_EMBEDDING_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/kernels.h"
#include "util/serialize.h"
#include "util/status.h"

namespace tabbin {

/// \brief Non-owning read-only view over a contiguous float range.
class VecView {
 public:
  VecView() = default;
  VecView(const float* data, size_t size) : data_(data), size_(size) {}
  // Intentionally implicit: lets owned vectors flow into span-taking APIs
  // (ConcatEmbeddings, CosineSimilarity, LshIndex) without copies.
  VecView(const std::vector<float>& v) : data_(v.data()), size_(v.size()) {}

  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float operator[](size_t i) const { return data_[i]; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// \brief Materializes the view as an owned vector.
  std::vector<float> ToVector() const {
    return std::vector<float>(data_, data_ + size_);
  }

 private:
  const float* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Dense [rows, cols] float matrix with contiguous row-major
/// storage and O(1) row views.
class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        data_(rows * cols, 0.0f),
        // All-zero rows have inverse norm 0 by definition; callers that
        // fill rows through data() must RecomputeInvNorms().
        inv_norms_(rows, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }
  size_t size() const { return rows_ * cols_; }

  // Whole-block accessors are owned-storage only: an external matrix
  // has no single contiguous block (base mapping + heap delta). Batched
  // scoring goes through CosineRows, per-row reads through row()/
  // row_ptr().
  const float* data() const {
    assert(base_data_ == nullptr && "data() on an external matrix");
    return data_.data();
  }
  float* data() {
    assert(base_data_ == nullptr && "data() on an external matrix");
    return data_.data();
  }

  VecView row(size_t r) const { return VecView(row_ptr(r), cols_); }

  /// \brief Pointer to row r wherever it lives: the borrowed base block
  /// for r < base_rows(), the heap delta above it.
  const float* row_ptr(size_t r) const {
    return r < base_rows_ ? base_data_ + r * cols_
                          : data_.data() + (r - base_rows_) * cols_;
  }

  float* mutable_row(size_t r) {
    // Base rows live in a read-only mapping; writing through them is a
    // hard bug (SIGSEGV at best). The serving layer never rewrites rows
    // in place (replacement = tombstone + append), so only delta rows
    // are ever mutable.
    assert(r >= base_rows_ && "mutable_row() on a borrowed (mapped) row");
    return data_.data() + (r - base_rows_) * cols_;
  }

  /// \brief Replaces the contents with a rows x cols block copied from
  /// `src` (row-major, rows * cols floats).
  void Assign(size_t rows, size_t cols, const float* src);

  /// \brief Appends one row. The first append fixes the width; later rows
  /// are zero-padded / truncated to it.
  void AppendRow(VecView v);

  /// \brief Overwrites row `r` (copying min(cols, v.size()) floats,
  /// zero-padding the rest) and refreshes its cached inverse norm.
  void set_row(size_t r, VecView v);

  /// \brief Cached 1 / ||row r||_2 (0 for a zero row), produced by
  /// kernels::InvNorm — the same bits a fresh computation over the row
  /// yields. Maintained by Assign / AppendRow / set_row / Deserialize;
  /// code that mutates rows through mutable_row() or data() must call
  /// RecomputeInvNorms() before anyone reads the cache.
  float inv_norm(size_t r) const { return inv_norms_[r]; }
  const float* inv_norms() const { return inv_norms_.data(); }

  /// \brief Rebuilds the whole inverse-norm cache from the row data
  /// (and, when quantization is enabled, the int8 code sidecar too —
  /// this is the one hook raw data()/mutable_row() writers already
  /// call, so enabling quantization adds no new maintenance duty).
  void RecomputeInvNorms();

  // --- Borrowed (mapped) base storage -----------------------------------
  // The zero-copy serving mode behind the paged snapshot store: the
  // first base_rows() rows live in an external read-only block (a
  // mapped snapshot section), rows appended afterwards go to the owned
  // heap delta. Sidecars (inverse norms, int8 codes) are always
  // per-process heap, full-length, and absolutely indexed — so the
  // quantized scan and inv_norm() behave identically in both modes.

  /// \brief Replaces the contents with a borrowed [rows, cols] row-major
  /// block. `owner` keeps the backing storage (typically a mapped
  /// snapshot) alive for the matrix's lifetime. When `inv_norms` is
  /// non-null it supplies the rows cached inverse norms (persisted at
  /// save time — adopting them avoids faulting in every row page on
  /// load); otherwise they are recomputed from the block.
  void WrapExternal(const float* data, size_t rows, size_t cols,
                    std::shared_ptr<const void> owner,
                    const float* inv_norms = nullptr);

  bool is_external() const { return base_data_ != nullptr; }
  size_t base_rows() const { return base_rows_; }
  size_t delta_rows() const { return rows_ - base_rows_; }

  /// \brief Batched cosine of `q` (with cached inv_q) against the
  /// listed rows, out[i] matching rows[i]. Owned matrices take one
  /// kernels::BatchedCosineRows pass; external ones split the indices
  /// by segment and scatter — per-row arithmetic is the same kernel
  /// either way, so scores are bit-identical across storage modes.
  void CosineRows(const float* q, float inv_q, const int* rows,
                  size_t nrows, float* out) const;

  /// \brief Copies the borrowed base into owned heap storage and drops
  /// the external reference (no-op when already owned). Sidecars are
  /// untouched — they are already heap-resident and absolutely indexed.
  void MaterializeOwned();

  /// \brief Installs a persisted int8 sidecar instead of re-encoding
  /// rows: copies [rows(), cols()] codes and takes the per-row params,
  /// rebuilding the fused dequant constants from the current inverse
  /// norms. `params.size()` must equal rows(). Equivalent to
  /// EnableQuantization() bit for bit (QuantizeRowAffine is
  /// deterministic), minus the page faults of reading every row.
  void AdoptQuantizedSidecar(const int8_t* codes,
                             std::vector<kernels::RowQuantParams> params);

  // --- Int8 scalar-quantized sidecar ------------------------------------
  // Opt-in per matrix: the serving shards enable it when the
  // quantized-scan knob is on; training-side matrices never pay the
  // ~25% memory overhead. Codes are DERIVED state, like the inverse
  // norms: maintained by Assign / AppendRow / set_row /
  // RecomputeInvNorms, never serialized (the snapshot byte format is
  // unchanged — a restored matrix re-derives codes when quantization is
  // re-enabled).

  /// \brief Turns the sidecar on and (re)encodes every existing row.
  /// Idempotent.
  void EnableQuantization();

  /// \brief Drops the sidecar and its memory.
  void DisableQuantization();

  bool quantized() const { return quantized_; }

  /// \brief Row-major [rows, cols] int8 codes; row r decodes as
  /// code_scale(r) * (code - code_zero(r)). Valid only when
  /// quantized().
  const int8_t* codes() const { return codes_.data(); }
  float code_scale(size_t r) const { return code_params_[r].scale; }
  int32_t code_zero(size_t r) const { return code_params_[r].zero; }

  /// \brief Fused per-row combine constants for the quantized scan, two
  /// per row: [2r] = code_scale(r) * inv_norm(r) and [2r+1] = that times
  /// code_zero(r). One contiguous 8-byte load replaces two gathers from
  /// separate arrays in the scan's float combine. Derived alongside the
  /// codes; valid only when quantized().
  const float* dequant_pairs() const { return dequant_.data(); }

  /// \brief Pre-allocates storage for `rows` rows of the current width.
  void Reserve(size_t rows) {
    data_.reserve(rows * cols_);
    inv_norms_.reserve(rows);
    if (quantized_) {
      codes_.reserve(rows * cols_);
      code_params_.reserve(rows);
      dequant_.reserve(2 * rows);
    }
  }

  void Clear() {
    rows_ = 0;
    cols_ = 0;
    base_data_ = nullptr;
    base_rows_ = 0;
    owner_.reset();
    data_.clear();
    inv_norms_.clear();
    codes_.clear();
    code_params_.clear();
    dequant_.clear();
  }

  /// \brief Writes rows, cols and the flat data block. The inverse-norm
  /// cache and the int8 code sidecar are derived state and deliberately
  /// NOT serialized — the byte format predates them and must not
  /// change.
  void Serialize(BinaryWriter* w) const;

  /// \brief Inverse of Serialize; rejects inconsistent geometry (a data
  /// block whose length is not rows * cols) with a Status error. The
  /// inverse-norm cache is recomputed from the loaded rows.
  static Result<EmbeddingMatrix> Deserialize(BinaryReader* r);

  /// \brief Writes exactly rows() * cols() raw floats of row data (no
  /// header; base block then delta) — the page-aligned block format of
  /// the paged snapshot store, which a reader WrapExternal()s in place.
  void AppendRowBytes(BinaryWriter* w) const;

 private:
  // Re-encodes row r into the sidecar (requires quantized_).
  void QuantizeRow(size_t r);

  size_t rows_ = 0;
  size_t cols_ = 0;
  // External mode: the first base_rows_ rows are read through
  // base_data_ (borrowed; owner_ keeps it alive) and data_ holds ONLY
  // the delta rows appended since. Owned mode: base_data_ is null,
  // base_rows_ is 0, and data_ holds every row.
  const float* base_data_ = nullptr;
  size_t base_rows_ = 0;
  std::shared_ptr<const void> owner_;
  std::vector<float> data_;
  // inv_norms_[r] == kernels::InvNorm(row r); always rows_ entries.
  std::vector<float> inv_norms_;
  // Int8 sidecar: empty unless quantized_; then codes_ is [rows, cols]
  // and code_params_ has rows_ entries.
  bool quantized_ = false;
  std::vector<int8_t> codes_;
  std::vector<kernels::RowQuantParams> code_params_;
  // dequant_[2r] = scale * inv_norm, dequant_[2r+1] = zero * scale *
  // inv_norm; 2 * rows_ entries when quantized_, refreshed by
  // QuantizeRow.
  std::vector<float> dequant_;
};

/// \brief A query vector quantized once for scanning against any
/// quantized matrix of the same width: symmetric int8 codes, their
/// scale and sum, and the float inverse norm the approximate cosine
/// combine shares with the exact path.
struct QuantizedQuery {
  std::vector<int8_t> codes;
  float scale = 0.0f;
  int32_t code_sum = 0;
  float inv_norm = 0.0f;
};

QuantizedQuery MakeQuantizedQuery(VecView q);

/// \brief Approximate cosine of `q` against the listed rows through the
/// int8 sidecar: one exact integer dot per row (bit-identical across
/// dispatch levels) plus a fixed-order float combine
///   (q_scale * q_inv_norm) * (idot * dq0 - code_sum * dq1),
/// where {dq0, dq1} are the row's fused dequant_pairs() constants.
/// The fast first pass of the scan -> shortlist -> rerank path; final
/// scores always come from the float kernels. Requires m.quantized().
void QuantizedCosineRows(const EmbeddingMatrix& m, const QuantizedQuery& q,
                         const int* rows, size_t nrows, float* out);

}  // namespace tabbin

#endif  // TABBIN_TENSOR_EMBEDDING_MATRIX_H_
