// Neural-network building blocks on top of the autograd tensor.
//
// Modules own their parameters (tensors with requires_grad = true) and
// register them in a flat named-parameter map so optimizers and
// checkpointing can see the whole model uniformly.
#ifndef TABBIN_TENSOR_NN_H_
#define TABBIN_TENSOR_NN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace tabbin {

/// \brief Flat registry of named parameters (name -> tensor handle).
using ParameterMap = std::map<std::string, Tensor>;

/// \brief Base class for layers; subclasses register parameters under a
/// caller-provided name prefix.
class Module {
 public:
  virtual ~Module() = default;

  /// \brief Appends this module's parameters into `out` with `prefix`.
  virtual void CollectParameters(const std::string& prefix,
                                 ParameterMap* out) const = 0;

  /// \brief Convenience: all parameters, rooted at an empty prefix.
  ParameterMap Parameters() const {
    ParameterMap out;
    CollectParameters("", &out);
    return out;
  }

  /// \brief Zeroes every parameter gradient.
  void ZeroGrad() {
    for (auto& [name, t] : Parameters()) {
      Tensor tt = t;
      tt.ZeroGrad();
    }
  }
};

/// \brief Affine map y = x W^T + b (W stored [out, in] like torch).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  Tensor weight;  ///< [out, in]
  Tensor bias;    ///< [out] (undefined when constructed without bias)

 private:
  int in_, out_;
  bool has_bias_;
};

/// \brief Token-id to vector lookup table.
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, Rng* rng, float stddev = 0.02f);

  Tensor Forward(const std::vector<int>& ids) const {
    return EmbeddingLookup(weight, ids);
  }

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

  int num_embeddings() const { return weight.dim(0); }
  int dim() const { return weight.dim(1); }
  Tensor weight;  ///< [V, d]
};

/// \brief Layer normalization with learned scale/shift.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Tensor Forward(const Tensor& x) const {
    return LayerNormOp(x, gamma, beta);
  }

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

  Tensor gamma;  ///< [d]
  Tensor beta;   ///< [d]
};

/// \brief Multi-head self-attention with an optional additive attention
/// bias (the TabBiN visibility matrix enters here; paper eq. (1)).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int hidden, int num_heads, Rng* rng);

  /// \param x [n, hidden] input activations.
  /// \param attn_bias Optional [n, n] additive bias applied to every
  /// head's pre-softmax scores (0 = visible, -1e9 = masked).
  Tensor Forward(const Tensor& x, const Tensor* attn_bias) const;

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

  int hidden() const { return hidden_; }
  int num_heads() const { return heads_; }

 private:
  int hidden_, heads_, head_dim_;
  std::unique_ptr<Linear> q_, k_, v_, o_;
};

/// \brief Position-wise feed-forward block: Linear -> GELU -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int hidden, int intermediate, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

 private:
  std::unique_ptr<Linear> fc1_, fc2_;
};

/// \brief Post-norm transformer encoder block (BERT layout):
/// x = LN(x + MHA(x)); x = LN(x + FFN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int hidden, int num_heads, int intermediate,
                          Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor* attn_bias, float dropout,
                 Rng* rng, bool training) const;

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

 private:
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNorm> ln1_, ln2_;
};

/// \brief Stack of encoder layers.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int num_layers, int hidden, int num_heads,
                     int intermediate, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor* attn_bias,
                 float dropout = 0.0f, Rng* rng = nullptr,
                 bool training = false) const;

  void CollectParameters(const std::string& prefix,
                         ParameterMap* out) const override;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

/// \brief Writes all parameters (by name) into a byte stream.
void SerializeParameters(const ParameterMap& params, BinaryWriter* w);

/// \brief Inverse of SerializeParameters. Every named parameter must
/// exist in `params` with a matching element count; the tensor storage is
/// overwritten in place.
Status DeserializeParameters(BinaryReader* r, ParameterMap* params);

/// \brief Saves all parameters to a versioned, checksummed snapshot file
/// (section "params").
Status SaveParameters(const ParameterMap& params, const std::string& path);

/// \brief Loads a checkpoint produced by SaveParameters. Truncated,
/// corrupt, or version-mismatched files return a Status error.
Status LoadParameters(const std::string& path, ParameterMap* params);

}  // namespace tabbin

#endif  // TABBIN_TENSOR_NN_H_
