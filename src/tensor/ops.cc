#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/kernels.h"
#include "util/logging.h"

namespace tabbin {

namespace {

using internal::TensorImpl;

// Accumulates `src` into the parent's grad buffer if it wants gradients.
inline void AccumulateGrad(TensorImpl* t, const std::vector<float>& src) {
  if (!t->requires_grad) return;
  t->EnsureGrad();
  for (size_t i = 0; i < src.size(); ++i) t->grad[i] += src[i];
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  std::vector<float> out(a.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] + b.data()[i];
  Tensor result = MakeOpOutput(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, bi, oi] {
      AccumulateGrad(ai, oi->grad);
      AccumulateGrad(bi, oi->grad);
    };
  }
  return result;
}

Tensor AddN(const std::vector<Tensor>& xs) {
  assert(!xs.empty());
  std::vector<float> out(xs[0].size(), 0.0f);
  for (const auto& x : xs) {
    assert(x.shape() == xs[0].shape());
    for (size_t i = 0; i < out.size(); ++i) out[i] += x.data()[i];
  }
  Tensor result = MakeOpOutput(xs[0].shape(), std::move(out), xs, nullptr);
  if (result.requires_grad()) {
    std::vector<TensorImpl*> parents;
    parents.reserve(xs.size());
    for (const auto& x : xs) parents.push_back(x.impl().get());
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [parents, oi] {
      for (TensorImpl* p : parents) AccumulateGrad(p, oi->grad);
    };
  }
  return result;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  std::vector<float> out(a.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] - b.data()[i];
  Tensor result = MakeOpOutput(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, bi, oi] {
      AccumulateGrad(ai, oi->grad);
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) bi->grad[i] -= oi->grad[i];
      }
    };
  }
  return result;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  std::vector<float> out(a.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] * b.data()[i];
  Tensor result = MakeOpOutput(a.shape(), std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, bi, oi] {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) {
          ai->grad[i] += oi->grad[i] * bi->data[i];
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) {
          bi->grad[i] += oi->grad[i] * ai->data[i];
        }
      }
    };
  }
  return result;
}

Tensor Scale(const Tensor& a, float s) {
  std::vector<float> out(a.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = a.data()[i] * s;
  Tensor result = MakeOpOutput(a.shape(), std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, oi, s] {
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        ai->grad[i] += oi->grad[i] * s;
      }
    };
  }
  return result;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  assert(x.ndim() == 2 && bias.ndim() == 1 && x.dim(1) == bias.dim(0));
  const int n = x.dim(0), d = x.dim(1);
  std::vector<float> out(x.size());
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) {
      out[static_cast<size_t>(r) * d + c] = x.at(r, c) + bias.at(c);
    }
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x, bias}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* bi = bias.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, bi, oi, n, d] {
      AccumulateGrad(xi, oi->grad);
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int r = 0; r < n; ++r) {
          for (int c = 0; c < d; ++c) {
            bi->grad[static_cast<size_t>(c)] +=
                oi->grad[static_cast<size_t>(r) * d + c];
          }
        }
      }
    };
  }
  return result;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  const int n = a.dim(0), k = a.dim(1), m = b.dim(1);
  // Forward runs on the dispatched blocked GEMM micro-kernel. The old
  // scalar loop skipped av == 0.0f terms, a branch that defeated
  // vectorization on the hot encoder path for a rare win; the kernel
  // streams unconditionally (adding av * brow where av == 0 contributes
  // exact zeros for finite inputs).
  std::vector<float> out(static_cast<size_t>(n) * m, 0.0f);
  kernels::Gemm(a.data(), b.data(), out.data(), n, k, m);
  Tensor result = MakeOpOutput({n, m}, std::move(out), {a, b}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, bi, oi, n, k, m] {
      const std::vector<float>& gout = oi->grad;
      if (ai->requires_grad) {
        ai->EnsureGrad();
        // dA = dOut * B^T. dA[i, kk] = <dOut row i, B row kk> — every
        // term is a dot of two contiguous rows, so one batched
        // row-dot pass per output row replaces the strided scalar loop.
        std::vector<float> row_dots(static_cast<size_t>(k));
        for (int i = 0; i < n; ++i) {
          const float* grow = gout.data() + static_cast<size_t>(i) * m;
          kernels::MatVec(bi->data.data(), static_cast<size_t>(k),
                          static_cast<size_t>(m), grow, row_dots.data());
          kernels::Axpy(1.0f, row_dots.data(),
                        ai->grad.data() + static_cast<size_t>(i) * k,
                        static_cast<size_t>(k));
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // dB = A^T * dOut: rank-1 updates, one SIMD axpy per (i, kk).
        for (int i = 0; i < n; ++i) {
          const float* grow = gout.data() + static_cast<size_t>(i) * m;
          for (int kk = 0; kk < k; ++kk) {
            kernels::Axpy(ai->data[static_cast<size_t>(i) * k + kk], grow,
                          bi->grad.data() + static_cast<size_t>(kk) * m,
                          static_cast<size_t>(m));
          }
        }
      }
    };
  }
  return result;
}

Tensor Transpose(const Tensor& a) {
  assert(a.ndim() == 2);
  const int n = a.dim(0), m = a.dim(1);
  std::vector<float> out(a.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      out[static_cast<size_t>(j) * n + i] = a.at(i, j);
    }
  }
  Tensor result = MakeOpOutput({m, n}, std::move(out), {a}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [ai, oi, n, m] {
      if (!ai->requires_grad) return;
      ai->EnsureGrad();
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < m; ++j) {
          ai->grad[static_cast<size_t>(i) * m + j] +=
              oi->grad[static_cast<size_t>(j) * n + i];
        }
      }
    };
  }
  return result;
}

Tensor SoftmaxRows(const Tensor& x, const Tensor* additive_mask) {
  assert(x.ndim() == 2);
  const int n = x.dim(0), m = x.dim(1);
  std::vector<float> out(x.size());
  for (int r = 0; r < n; ++r) {
    float maxv = -1e30f;
    for (int c = 0; c < m; ++c) {
      float v = x.at(r, c);
      if (additive_mask) v += additive_mask->at(r, c);
      if (v > maxv) maxv = v;
    }
    float sum = 0.0f;
    for (int c = 0; c < m; ++c) {
      float v = x.at(r, c);
      if (additive_mask) v += additive_mask->at(r, c);
      float e = std::exp(v - maxv);
      out[static_cast<size_t>(r) * m + c] = e;
      sum += e;
    }
    const float inv = 1.0f / (sum + 1e-12f);
    for (int c = 0; c < m; ++c) out[static_cast<size_t>(r) * m + c] *= inv;
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi, n, m] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (int r = 0; r < n; ++r) {
        const float* y = oi->data.data() + static_cast<size_t>(r) * m;
        const float* gy = oi->grad.data() + static_cast<size_t>(r) * m;
        float dot = 0.0f;
        for (int c = 0; c < m; ++c) dot += y[c] * gy[c];
        float* gx = xi->grad.data() + static_cast<size_t>(r) * m;
        for (int c = 0; c < m; ++c) gx[c] += y[c] * (gy[c] - dot);
      }
    };
  }
  return result;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  assert(x.ndim() == 2 && gamma.ndim() == 1 && beta.ndim() == 1);
  assert(x.dim(1) == gamma.dim(0) && x.dim(1) == beta.dim(0));
  const int n = x.dim(0), d = x.dim(1);
  std::vector<float> out(x.size());
  std::vector<float> mean(n), rstd(n);
  for (int r = 0; r < n; ++r) {
    const float* row = x.data() + static_cast<size_t>(r) * d;
    float mu = 0.0f;
    for (int c = 0; c < d; ++c) mu += row[c];
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (int c = 0; c < d; ++c) {
      float dv = row[c] - mu;
      var += dv * dv;
    }
    var /= static_cast<float>(d);
    float rs = 1.0f / std::sqrt(var + eps);
    mean[r] = mu;
    rstd[r] = rs;
    for (int c = 0; c < d; ++c) {
      out[static_cast<size_t>(r) * d + c] =
          (row[c] - mu) * rs * gamma.at(c) + beta.at(c);
    }
  }
  Tensor result =
      MakeOpOutput(x.shape(), std::move(out), {x, gamma, beta}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* gi = gamma.impl().get();
    TensorImpl* bi = beta.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, gi, bi, oi, n, d, mean, rstd] {
      for (int r = 0; r < n; ++r) {
        const float* xrow = xi->data.data() + static_cast<size_t>(r) * d;
        const float* grow = oi->grad.data() + static_cast<size_t>(r) * d;
        const float mu = mean[r], rs = rstd[r];
        if (gi->requires_grad) {
          gi->EnsureGrad();
          for (int c = 0; c < d; ++c) {
            gi->grad[static_cast<size_t>(c)] +=
                grow[c] * (xrow[c] - mu) * rs;
          }
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          for (int c = 0; c < d; ++c) bi->grad[static_cast<size_t>(c)] += grow[c];
        }
        if (xi->requires_grad) {
          xi->EnsureGrad();
          // dx = rs * gamma * (gy - mean(gy*gamma) - xhat * mean(gy*gamma*xhat))
          float sum_gy = 0.0f, sum_gy_xhat = 0.0f;
          for (int c = 0; c < d; ++c) {
            float gyg = grow[c] * gi->data[static_cast<size_t>(c)];
            float xhat = (xrow[c] - mu) * rs;
            sum_gy += gyg;
            sum_gy_xhat += gyg * xhat;
          }
          const float inv_d = 1.0f / static_cast<float>(d);
          for (int c = 0; c < d; ++c) {
            float gyg = grow[c] * gi->data[static_cast<size_t>(c)];
            float xhat = (xrow[c] - mu) * rs;
            xi->grad[static_cast<size_t>(r) * d + c] +=
                rs * (gyg - inv_d * sum_gy - xhat * inv_d * sum_gy_xhat);
          }
        }
      }
    };
  }
  return result;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor Gelu(const Tensor& x) {
  std::vector<float> out(x.size());
  for (size_t i = 0; i < out.size(); ++i) {
    float v = x.data()[i];
    float inner = kGeluC * (v + 0.044715f * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        float v = xi->data[i];
        float inner = kGeluC * (v + 0.044715f * v * v * v);
        float t = std::tanh(inner);
        float dt = (1.0f - t * t) * kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
        float dgelu = 0.5f * (1.0f + t) + 0.5f * v * dt;
        xi->grad[i] += oi->grad[i] * dgelu;
      }
    };
  }
  return result;
}

Tensor Relu(const Tensor& x) {
  std::vector<float> out(x.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = x.data()[i] > 0.0f ? x.data()[i] : 0.0f;
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        if (xi->data[i] > 0.0f) xi->grad[i] += oi->grad[i];
      }
    };
  }
  return result;
}

Tensor TanhOp(const Tensor& x) {
  std::vector<float> out(x.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(x.data()[i]);
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        float y = oi->data[i];
        xi->grad[i] += oi->grad[i] * (1.0f - y * y);
      }
    };
  }
  return result;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids) {
  assert(weight.ndim() == 2);
  const int d = weight.dim(1);
  const int n = static_cast<int>(ids.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  for (int i = 0; i < n; ++i) {
    assert(ids[i] >= 0 && ids[i] < weight.dim(0));
    const float* src = weight.data() + static_cast<size_t>(ids[i]) * d;
    std::copy(src, src + d, out.data() + static_cast<size_t>(i) * d);
  }
  Tensor result = MakeOpOutput({n, d}, std::move(out), {weight}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* wi = weight.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [wi, oi, ids, n, d] {
      if (!wi->requires_grad) return;
      wi->EnsureGrad();
      for (int i = 0; i < n; ++i) {
        float* dst = wi->grad.data() + static_cast<size_t>(ids[i]) * d;
        const float* src = oi->grad.data() + static_cast<size_t>(i) * d;
        for (int c = 0; c < d; ++c) dst[c] += src[c];
      }
    };
  }
  return result;
}

Tensor ConcatCols(const std::vector<Tensor>& xs) {
  assert(!xs.empty());
  const int n = xs[0].dim(0);
  int total = 0;
  for (const auto& x : xs) {
    assert(x.ndim() == 2 && x.dim(0) == n);
    total += x.dim(1);
  }
  std::vector<float> out(static_cast<size_t>(n) * total);
  int offset = 0;
  for (const auto& x : xs) {
    const int d = x.dim(1);
    for (int r = 0; r < n; ++r) {
      std::copy(x.data() + static_cast<size_t>(r) * d,
                x.data() + static_cast<size_t>(r) * d + d,
                out.data() + static_cast<size_t>(r) * total + offset);
    }
    offset += d;
  }
  Tensor result = MakeOpOutput({n, total}, std::move(out), xs, nullptr);
  if (result.requires_grad()) {
    std::vector<TensorImpl*> parents;
    std::vector<int> dims;
    for (const auto& x : xs) {
      parents.push_back(x.impl().get());
      dims.push_back(x.dim(1));
    }
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [parents, dims, oi, n, total] {
      int offset = 0;
      for (size_t p = 0; p < parents.size(); ++p) {
        TensorImpl* pi = parents[p];
        const int d = dims[p];
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (int r = 0; r < n; ++r) {
            const float* src =
                oi->grad.data() + static_cast<size_t>(r) * total + offset;
            float* dst = pi->grad.data() + static_cast<size_t>(r) * d;
            for (int c = 0; c < d; ++c) dst[c] += src[c];
          }
        }
        offset += d;
      }
    };
  }
  return result;
}

Tensor GatherRows(const Tensor& x, const std::vector<int>& rows) {
  assert(x.ndim() == 2);
  const int d = x.dim(1);
  const int k = static_cast<int>(rows.size());
  std::vector<float> out(static_cast<size_t>(k) * d);
  for (int i = 0; i < k; ++i) {
    assert(rows[i] >= 0 && rows[i] < x.dim(0));
    const float* src = x.data() + static_cast<size_t>(rows[i]) * d;
    std::copy(src, src + d, out.data() + static_cast<size_t>(i) * d);
  }
  Tensor result = MakeOpOutput({k, d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi, rows, k, d] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (int i = 0; i < k; ++i) {
        float* dst = xi->grad.data() + static_cast<size_t>(rows[i]) * d;
        const float* src = oi->grad.data() + static_cast<size_t>(i) * d;
        for (int c = 0; c < d; ++c) dst[c] += src[c];
      }
    };
  }
  return result;
}

Tensor SliceRows(const Tensor& x, int start, int len) {
  std::vector<int> rows(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) rows[static_cast<size_t>(i)] = start + i;
  return GatherRows(x, rows);
}

Tensor MeanRows(const Tensor& x) {
  assert(x.ndim() == 2);
  const int n = x.dim(0), d = x.dim(1);
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < d; ++c) out[static_cast<size_t>(c)] += x.at(r, c);
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (auto& v : out) v *= inv;
  Tensor result = MakeOpOutput({d}, std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi, n, d, inv] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < d; ++c) {
          xi->grad[static_cast<size_t>(r) * d + c] +=
              oi->grad[static_cast<size_t>(c)] * inv;
        }
      }
    };
  }
  return result;
}

Tensor SumAll(const Tensor& x) {
  float total = 0.0f;
  for (size_t i = 0; i < x.size(); ++i) total += x.data()[i];
  Tensor result = MakeOpOutput({1}, {total}, {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      const float g = oi->grad[0];
      for (auto& v : xi->grad) v += g;
    };
  }
  return result;
}

Tensor MeanAll(const Tensor& x) {
  return Scale(SumAll(x), 1.0f / static_cast<float>(x.size()));
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& targets,
                              int ignore_index) {
  assert(logits.ndim() == 2);
  const int n = logits.dim(0), v = logits.dim(1);
  assert(static_cast<int>(targets.size()) == n);
  // Fused log-softmax + NLL for numerical stability; cache probabilities
  // for the backward pass.
  std::vector<float> probs(logits.size());
  float loss = 0.0f;
  int active = 0;
  for (int r = 0; r < n; ++r) {
    const float* row = logits.data() + static_cast<size_t>(r) * v;
    float maxv = -1e30f;
    for (int c = 0; c < v; ++c) maxv = std::max(maxv, row[c]);
    float sum = 0.0f;
    for (int c = 0; c < v; ++c) {
      float e = std::exp(row[c] - maxv);
      probs[static_cast<size_t>(r) * v + c] = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < v; ++c) probs[static_cast<size_t>(r) * v + c] *= inv;
    if (targets[static_cast<size_t>(r)] != ignore_index) {
      ++active;
      float p = probs[static_cast<size_t>(r) * v +
                      targets[static_cast<size_t>(r)]];
      loss -= std::log(std::max(p, 1e-12f));
    }
  }
  if (active > 0) loss /= static_cast<float>(active);
  Tensor result = MakeOpOutput({1}, {loss}, {logits}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* li = logits.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn =
        [li, oi, probs = std::move(probs), targets, n, v, active,
         ignore_index] {
          if (!li->requires_grad || active == 0) return;
          li->EnsureGrad();
          const float g = oi->grad[0] / static_cast<float>(active);
          for (int r = 0; r < n; ++r) {
            const int t = targets[static_cast<size_t>(r)];
            if (t == ignore_index) continue;
            for (int c = 0; c < v; ++c) {
              float p = probs[static_cast<size_t>(r) * v + c];
              li->grad[static_cast<size_t>(r) * v + c] +=
                  g * (p - (c == t ? 1.0f : 0.0f));
            }
          }
        };
  }
  return result;
}

Tensor DropoutOp(const Tensor& x, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return x;
  const float keep = 1.0f - p;
  const float scale = 1.0f / keep;
  std::vector<float> mask(x.size());
  std::vector<float> out(x.size());
  for (size_t i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(keep) ? scale : 0.0f;
    out[i] = x.data()[i] * mask[i];
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi, mask = std::move(mask)] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        xi->grad[i] += oi->grad[i] * mask[i];
      }
    };
  }
  return result;
}

Tensor Sigmoid(const Tensor& x) {
  std::vector<float> out(x.size());
  for (size_t i = 0; i < out.size(); ++i) {
    float v = x.data()[i];
    out[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                       : std::exp(v) / (1.0f + std::exp(v));
  }
  Tensor result = MakeOpOutput(x.shape(), std::move(out), {x}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [xi, oi] {
      if (!xi->requires_grad) return;
      xi->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        float y = oi->data[i];
        xi->grad[i] += oi->grad[i] * y * (1.0f - y);
      }
    };
  }
  return result;
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& labels) {
  assert(logits.size() == labels.size());
  const size_t n = logits.size();
  float loss = 0.0f;
  std::vector<float> sig(n);
  for (size_t i = 0; i < n; ++i) {
    float z = logits.data()[i];
    float s = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                        : std::exp(z) / (1.0f + std::exp(z));
    sig[i] = s;
    // log(1+exp(-|z|)) formulation for stability.
    float abs_z = std::fabs(z);
    loss += std::max(z, 0.0f) - z * labels[i] + std::log1p(std::exp(-abs_z));
  }
  loss /= static_cast<float>(n);
  Tensor result = MakeOpOutput({1}, {loss}, {logits}, nullptr);
  if (result.requires_grad()) {
    TensorImpl* li = logits.impl().get();
    TensorImpl* oi = result.impl().get();
    result.impl()->backward_fn = [li, oi, sig = std::move(sig), labels, n] {
      if (!li->requires_grad) return;
      li->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(n);
      for (size_t i = 0; i < n; ++i) {
        li->grad[i] += g * (sig[i] - labels[i]);
      }
    };
  }
  return result;
}

float CosineSimilarity(VecView a, VecView b) {
  assert(a.size() == b.size());
  // (dot * inv_a) * inv_b through the dispatched kernels — the exact
  // expression kernels::BatchedCosineRows evaluates per row, so a
  // pairwise score and a batched score over the same bytes are the same
  // bits. InvNorm returns 0 for a zero vector, which zeroes the product
  // (the documented zero-vector result) without a branch that the
  // batched path would lack.
  const float inv_a = kernels::InvNorm(a.data(), a.size());
  const float inv_b = kernels::InvNorm(b.data(), b.size());
  return kernels::Dot(a.data(), b.data(), a.size()) * inv_a * inv_b;
}

}  // namespace tabbin
