// First-order optimizers over ParameterMaps.
#ifndef TABBIN_TENSOR_OPTIMIZER_H_
#define TABBIN_TENSOR_OPTIMIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/nn.h"

namespace tabbin {

/// \brief Adam (Kingma & Ba 2015) with optional decoupled weight decay
/// and global-norm gradient clipping — the paper trains with
/// lr = 2e-5 / batch 12 BERT defaults.
class AdamOptimizer {
 public:
  struct Options {
    float lr = 2e-5f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;   // decoupled (AdamW-style)
    float clip_norm = 0.0f;      // 0 disables clipping
  };

  AdamOptimizer(ParameterMap params, Options options);

  /// \brief Applies one update from accumulated gradients.
  void Step();

  /// \brief Zeroes all parameter gradients.
  void ZeroGrad();

  int64_t step_count() const { return t_; }
  Options& options() { return options_; }

 private:
  struct Slot {
    Tensor param;
    std::vector<float> m;
    std::vector<float> v;
  };

  std::vector<Slot> slots_;
  Options options_;
  int64_t t_ = 0;
};

/// \brief Plain SGD, used by the Word2Vec baseline.
class SgdOptimizer {
 public:
  SgdOptimizer(ParameterMap params, float lr);
  void Step();
  void ZeroGrad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Tensor> params_;
  float lr_;
};

}  // namespace tabbin

#endif  // TABBIN_TENSOR_OPTIMIZER_H_
