#include "tensor/nn.h"

#include <cmath>

#include "util/logging.h"
#include "util/serialize.h"
#include "util/snapshot.h"

namespace tabbin {

Linear::Linear(int in_features, int out_features, Rng* rng, bool with_bias)
    : in_(in_features), out_(out_features), has_bias_(with_bias) {
  // Xavier-uniform initialization.
  float bound = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight = Tensor::RandUniform({out_features, in_features}, rng, bound,
                               /*requires_grad=*/true);
  if (with_bias) {
    bias = Tensor::Zeros({out_features}, /*requires_grad=*/true);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, Transpose(weight));
  if (has_bias_) y = AddRowBroadcast(y, bias);
  return y;
}

void Linear::CollectParameters(const std::string& prefix,
                               ParameterMap* out) const {
  (*out)[prefix + "weight"] = weight;
  if (has_bias_) (*out)[prefix + "bias"] = bias;
}

Embedding::Embedding(int num_embeddings, int dim, Rng* rng, float stddev) {
  weight = Tensor::Randn({num_embeddings, dim}, rng, stddev,
                         /*requires_grad=*/true);
}

void Embedding::CollectParameters(const std::string& prefix,
                                  ParameterMap* out) const {
  (*out)[prefix + "weight"] = weight;
}

LayerNorm::LayerNorm(int dim) {
  gamma = Tensor::Full({dim}, 1.0f, /*requires_grad=*/true);
  beta = Tensor::Zeros({dim}, /*requires_grad=*/true);
}

void LayerNorm::CollectParameters(const std::string& prefix,
                                  ParameterMap* out) const {
  (*out)[prefix + "gamma"] = gamma;
  (*out)[prefix + "beta"] = beta;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int hidden, int num_heads,
                                               Rng* rng)
    : hidden_(hidden), heads_(num_heads), head_dim_(hidden / num_heads) {
  TABBIN_CHECK(hidden % num_heads == 0)
      << "hidden " << hidden << " not divisible by heads " << num_heads;
  q_ = std::make_unique<Linear>(hidden, hidden, rng);
  k_ = std::make_unique<Linear>(hidden, hidden, rng);
  v_ = std::make_unique<Linear>(hidden, hidden, rng);
  o_ = std::make_unique<Linear>(hidden, hidden, rng);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor* attn_bias) const {
  const int n = x.dim(0);
  Tensor q = q_->Forward(x);  // [n, H]
  Tensor k = k_->Forward(x);
  Tensor v = v_->Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    // Column slice of head h; implemented via a gather on the transposed
    // view to stay within 2-D ops.
    std::vector<int> cols(static_cast<size_t>(head_dim_));
    for (int i = 0; i < head_dim_; ++i) cols[static_cast<size_t>(i)] = h * head_dim_ + i;
    Tensor qh = Transpose(GatherRows(Transpose(q), cols));  // [n, hd]
    Tensor kh = Transpose(GatherRows(Transpose(k), cols));
    Tensor vh = Transpose(GatherRows(Transpose(v), cols));
    Tensor scores = Scale(MatMul(qh, Transpose(kh)), scale);  // [n, n]
    Tensor attn = SoftmaxRows(scores, attn_bias);
    head_outputs.push_back(MatMul(attn, vh));  // [n, hd]
  }
  Tensor concat = heads_ == 1 ? head_outputs[0] : ConcatCols(head_outputs);
  (void)n;
  return o_->Forward(concat);
}

void MultiHeadSelfAttention::CollectParameters(const std::string& prefix,
                                               ParameterMap* out) const {
  q_->CollectParameters(prefix + "q.", out);
  k_->CollectParameters(prefix + "k.", out);
  v_->CollectParameters(prefix + "v.", out);
  o_->CollectParameters(prefix + "o.", out);
}

FeedForward::FeedForward(int hidden, int intermediate, Rng* rng) {
  fc1_ = std::make_unique<Linear>(hidden, intermediate, rng);
  fc2_ = std::make_unique<Linear>(intermediate, hidden, rng);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  return fc2_->Forward(Gelu(fc1_->Forward(x)));
}

void FeedForward::CollectParameters(const std::string& prefix,
                                    ParameterMap* out) const {
  fc1_->CollectParameters(prefix + "fc1.", out);
  fc2_->CollectParameters(prefix + "fc2.", out);
}

TransformerEncoderLayer::TransformerEncoderLayer(int hidden, int num_heads,
                                                 int intermediate, Rng* rng) {
  attn_ = std::make_unique<MultiHeadSelfAttention>(hidden, num_heads, rng);
  ffn_ = std::make_unique<FeedForward>(hidden, intermediate, rng);
  ln1_ = std::make_unique<LayerNorm>(hidden);
  ln2_ = std::make_unique<LayerNorm>(hidden);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        const Tensor* attn_bias,
                                        float dropout, Rng* rng,
                                        bool training) const {
  Tensor a = attn_->Forward(x, attn_bias);
  if (training && rng) a = DropoutOp(a, dropout, rng, training);
  Tensor h = ln1_->Forward(Add(x, a));
  Tensor f = ffn_->Forward(h);
  if (training && rng) f = DropoutOp(f, dropout, rng, training);
  return ln2_->Forward(Add(h, f));
}

void TransformerEncoderLayer::CollectParameters(const std::string& prefix,
                                                ParameterMap* out) const {
  attn_->CollectParameters(prefix + "attn.", out);
  ffn_->CollectParameters(prefix + "ffn.", out);
  ln1_->CollectParameters(prefix + "ln1.", out);
  ln2_->CollectParameters(prefix + "ln2.", out);
}

TransformerEncoder::TransformerEncoder(int num_layers, int hidden,
                                       int num_heads, int intermediate,
                                       Rng* rng) {
  layers_.reserve(static_cast<size_t>(num_layers));
  for (int i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        hidden, num_heads, intermediate, rng));
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x, const Tensor* attn_bias,
                                   float dropout, Rng* rng,
                                   bool training) const {
  Tensor h = x;
  for (const auto& layer : layers_) {
    h = layer->Forward(h, attn_bias, dropout, rng, training);
  }
  return h;
}

void TransformerEncoder::CollectParameters(const std::string& prefix,
                                           ParameterMap* out) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParameters(prefix + "layer" + std::to_string(i) + ".",
                                  out);
  }
}

void SerializeParameters(const ParameterMap& params, BinaryWriter* w) {
  w->WriteU64(params.size());
  for (const auto& [name, t] : params) {
    w->WriteString(name);
    w->WriteF32Vector(t.vec());
  }
}

Status DeserializeParameters(BinaryReader* r, ParameterMap* params) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t count, r->ReadU64());
  if (count != params->size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(params->size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    TABBIN_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    TABBIN_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadF32Vector());
    auto it = params->find(name);
    if (it == params->end()) {
      return Status::NotFound("checkpoint parameter not in model: " + name);
    }
    if (it->second.size() != data.size()) {
      return Status::InvalidArgument("checkpoint size mismatch for " + name);
    }
    std::copy(data.begin(), data.end(), it->second.vec().begin());
  }
  return Status::OK();
}

Status SaveParameters(const ParameterMap& params, const std::string& path) {
  SnapshotWriter snapshot;
  SerializeParameters(params, snapshot.AddSection("params"));
  return snapshot.ToFile(path);
}

Status LoadParameters(const std::string& path, ParameterMap* params) {
  TABBIN_ASSIGN_OR_RETURN(SnapshotReader snapshot,
                          SnapshotReader::FromFile(path));
  TABBIN_ASSIGN_OR_RETURN(BinaryReader r, snapshot.Section("params"));
  return DeserializeParameters(&r, params);
}

}  // namespace tabbin
