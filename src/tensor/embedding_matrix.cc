#include "tensor/embedding_matrix.h"

#include <algorithm>
#include <cstring>

#include "tensor/kernels.h"

namespace tabbin {

void EmbeddingMatrix::Assign(size_t rows, size_t cols, const float* src) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  if (!data_.empty()) {
    std::memcpy(data_.data(), src, data_.size() * sizeof(float));
  }
  RecomputeInvNorms();
}

void EmbeddingMatrix::AppendRow(VecView v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  const size_t n = std::min(cols_, v.size());
  data_.resize(data_.size() + cols_, 0.0f);
  float* dst = data_.data() + rows_ * cols_;
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  ++rows_;
  // Norm of the STORED row (post pad/truncate), so the cache is exact
  // even for ragged inputs.
  inv_norms_.push_back(kernels::InvNorm(dst, cols_));
  if (quantized_) {
    codes_.resize(codes_.size() + cols_);
    code_params_.resize(rows_);
    dequant_.resize(2 * rows_);
    QuantizeRow(rows_ - 1);
  }
}

void EmbeddingMatrix::set_row(size_t r, VecView v) {
  float* dst = data_.data() + r * cols_;
  const size_t n = std::min(cols_, v.size());
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  if (n < cols_) std::memset(dst + n, 0, (cols_ - n) * sizeof(float));
  inv_norms_[r] = kernels::InvNorm(dst, cols_);
  if (quantized_) QuantizeRow(r);
}

void EmbeddingMatrix::RecomputeInvNorms() {
  inv_norms_.resize(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    inv_norms_[r] = kernels::InvNorm(data_.data() + r * cols_, cols_);
  }
  if (quantized_) {
    codes_.resize(rows_ * cols_);
    code_params_.resize(rows_);
    dequant_.resize(2 * rows_);
    for (size_t r = 0; r < rows_; ++r) QuantizeRow(r);
  }
}

void EmbeddingMatrix::EnableQuantization() {
  if (quantized_) return;
  quantized_ = true;
  codes_.resize(rows_ * cols_);
  code_params_.resize(rows_);
  dequant_.resize(2 * rows_);
  for (size_t r = 0; r < rows_; ++r) QuantizeRow(r);
}

void EmbeddingMatrix::DisableQuantization() {
  quantized_ = false;
  codes_.clear();
  codes_.shrink_to_fit();
  code_params_.clear();
  code_params_.shrink_to_fit();
  dequant_.clear();
  dequant_.shrink_to_fit();
}

void EmbeddingMatrix::QuantizeRow(size_t r) {
  code_params_[r] = kernels::QuantizeRowAffine(
      data_.data() + r * cols_, cols_, codes_.data() + r * cols_);
  const float a = code_params_[r].scale * inv_norms_[r];
  dequant_[2 * r] = a;
  dequant_[2 * r + 1] = static_cast<float>(code_params_[r].zero) * a;
}

void EmbeddingMatrix::Serialize(BinaryWriter* w) const {
  w->WriteU64(rows_);
  w->WriteU64(cols_);
  w->WriteF32Vector(data_);
}

Result<EmbeddingMatrix> EmbeddingMatrix::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t rows, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(uint64_t cols, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadF32Vector());
  // The data block is already bounds-checked against the buffer; the
  // geometry must multiply out to exactly its length (checked without
  // forming rows * cols, which can overflow).
  const bool consistent =
      cols == 0 ? data.empty()
                : (data.size() % cols == 0 && data.size() / cols == rows);
  if (!consistent) {
    return Status::ParseError("EmbeddingMatrix: geometry/data mismatch");
  }
  EmbeddingMatrix m;
  m.rows_ = static_cast<size_t>(rows);
  m.cols_ = static_cast<size_t>(cols);
  m.data_ = std::move(data);
  m.RecomputeInvNorms();
  return m;
}

QuantizedQuery MakeQuantizedQuery(VecView q) {
  QuantizedQuery out;
  out.codes.resize(q.size());
  const kernels::QueryQuantParams p =
      kernels::QuantizeSymmetric(q.data(), q.size(), out.codes.data());
  out.scale = p.scale;
  out.code_sum = p.code_sum;
  out.inv_norm = kernels::InvNorm(q.data(), q.size());
  return out;
}

void QuantizedCosineRows(const EmbeddingMatrix& m, const QuantizedQuery& q,
                         const int* rows, size_t nrows, float* out) {
  // Integer part first (exact at every dispatch level), then ONE
  // fixed-order float combine — the only place approximate scores are
  // assembled, so every caller ranks by the same bits. Processed in
  // blocks so the integer dots never leave L1 and the scan allocates
  // nothing (per-block results are identical to one whole-scan pass:
  // each row's value depends only on that row).
  constexpr size_t kBlock = 1024;
  int32_t idots[kBlock];
  const float sum_d = static_cast<float>(q.code_sum);
  const float q_combo = q.scale * q.inv_norm;
  const float* dq = m.dequant_pairs();
  for (size_t base = 0; base < nrows; base += kBlock) {
    const size_t count = std::min(kBlock, nrows - base);
    kernels::BatchedQuantizedDotRows(q.codes.data(), m.codes(), m.cols(),
                                     rows + base, count, idots);
    for (size_t i = 0; i < count; ++i) {
      // dq holds {scale * inv_norm, zero * scale * inv_norm} per row:
      // one contiguous 8-byte load instead of two gathers.
      const float* d = dq + 2 * static_cast<size_t>(rows[base + i]);
      out[base + i] =
          q_combo * (static_cast<float>(idots[i]) * d[0] - sum_d * d[1]);
    }
  }
}

}  // namespace tabbin
