#include "tensor/embedding_matrix.h"

#include <algorithm>
#include <cstring>

#include "tensor/kernels.h"

namespace tabbin {

void EmbeddingMatrix::Assign(size_t rows, size_t cols, const float* src) {
  base_data_ = nullptr;
  base_rows_ = 0;
  owner_.reset();
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  if (!data_.empty()) {
    std::memcpy(data_.data(), src, data_.size() * sizeof(float));
  }
  RecomputeInvNorms();
}

void EmbeddingMatrix::AppendRow(VecView v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  const size_t n = std::min(cols_, v.size());
  // data_ holds only the delta rows in external mode, so the write
  // position is delta-relative (== the old end of data_ either way).
  data_.resize(data_.size() + cols_, 0.0f);
  float* dst = data_.data() + data_.size() - cols_;
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  ++rows_;
  // Norm of the STORED row (post pad/truncate), so the cache is exact
  // even for ragged inputs.
  inv_norms_.push_back(kernels::InvNorm(dst, cols_));
  if (quantized_) {
    codes_.resize(codes_.size() + cols_);
    code_params_.resize(rows_);
    dequant_.resize(2 * rows_);
    QuantizeRow(rows_ - 1);
  }
}

void EmbeddingMatrix::set_row(size_t r, VecView v) {
  float* dst = mutable_row(r);  // asserts r is not a borrowed base row
  const size_t n = std::min(cols_, v.size());
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  if (n < cols_) std::memset(dst + n, 0, (cols_ - n) * sizeof(float));
  inv_norms_[r] = kernels::InvNorm(dst, cols_);
  if (quantized_) QuantizeRow(r);
}

void EmbeddingMatrix::RecomputeInvNorms() {
  inv_norms_.resize(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    inv_norms_[r] = kernels::InvNorm(row_ptr(r), cols_);
  }
  if (quantized_) {
    codes_.resize(rows_ * cols_);
    code_params_.resize(rows_);
    dequant_.resize(2 * rows_);
    for (size_t r = 0; r < rows_; ++r) QuantizeRow(r);
  }
}

void EmbeddingMatrix::WrapExternal(const float* data, size_t rows,
                                   size_t cols,
                                   std::shared_ptr<const void> owner,
                                   const float* inv_norms) {
  // Clear() drops the codes but not the flag; re-arm below so a
  // previously-quantized matrix re-encodes the wrapped rows instead of
  // advertising an empty sidecar.
  const bool was_quantized = quantized_;
  quantized_ = false;
  Clear();
  base_data_ = data;
  base_rows_ = rows;
  rows_ = rows;
  cols_ = cols;
  owner_ = std::move(owner);
  inv_norms_.resize(rows);
  if (inv_norms != nullptr) {
    if (rows > 0) {
      std::memcpy(inv_norms_.data(), inv_norms, rows * sizeof(float));
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      inv_norms_[r] = kernels::InvNorm(data + r * cols, cols);
    }
  }
  if (was_quantized) EnableQuantization();
}

void EmbeddingMatrix::CosineRows(const float* q, float inv_q,
                                 const int* rows, size_t nrows,
                                 float* out) const {
  if (nrows == 0) return;
  if (base_data_ == nullptr) {
    kernels::BatchedCosineRows(q, inv_q, data_.data(), cols_, rows, nrows,
                               inv_norms_.data(), out);
    return;
  }
  // Common serving case: no writes since the wrap — every index is a
  // base row and one kernel pass over the mapping suffices.
  bool all_base = true;
  for (size_t i = 0; i < nrows; ++i) {
    if (static_cast<size_t>(rows[i]) >= base_rows_) {
      all_base = false;
      break;
    }
  }
  if (all_base) {
    kernels::BatchedCosineRows(q, inv_q, base_data_, cols_, rows, nrows,
                               inv_norms_.data(), out);
    return;
  }
  // Mixed: split by segment, run each through the kernel against its
  // block, and scatter back to the caller's order. Delta indices are
  // rebased so the kernel reads data_ — and its row_inv_norms base is
  // rebased in lockstep, so norms[i] still matches row rows[i]. Each
  // row's score is one kernel evaluation either way: bit-identical to
  // the owned-storage single pass.
  std::vector<int> idx;
  std::vector<size_t> pos;
  std::vector<float> tmp;
  idx.reserve(nrows);
  pos.reserve(nrows);
  for (size_t i = 0; i < nrows; ++i) {
    if (static_cast<size_t>(rows[i]) < base_rows_) {
      idx.push_back(rows[i]);
      pos.push_back(i);
    }
  }
  tmp.resize(nrows);
  if (!idx.empty()) {
    kernels::BatchedCosineRows(q, inv_q, base_data_, cols_, idx.data(),
                               idx.size(), inv_norms_.data(), tmp.data());
    for (size_t i = 0; i < idx.size(); ++i) out[pos[i]] = tmp[i];
  }
  idx.clear();
  pos.clear();
  for (size_t i = 0; i < nrows; ++i) {
    if (static_cast<size_t>(rows[i]) >= base_rows_) {
      idx.push_back(rows[i] - static_cast<int>(base_rows_));
      pos.push_back(i);
    }
  }
  if (!idx.empty()) {
    kernels::BatchedCosineRows(q, inv_q, data_.data(), cols_, idx.data(),
                               idx.size(), inv_norms_.data() + base_rows_,
                               tmp.data());
    for (size_t i = 0; i < idx.size(); ++i) out[pos[i]] = tmp[i];
  }
}

void EmbeddingMatrix::MaterializeOwned() {
  if (base_data_ == nullptr) return;
  std::vector<float> full(rows_ * cols_);
  if (base_rows_ > 0) {
    std::memcpy(full.data(), base_data_, base_rows_ * cols_ * sizeof(float));
  }
  if (!data_.empty()) {
    std::memcpy(full.data() + base_rows_ * cols_, data_.data(),
                data_.size() * sizeof(float));
  }
  data_ = std::move(full);
  base_data_ = nullptr;
  base_rows_ = 0;
  owner_.reset();
}

void EmbeddingMatrix::AdoptQuantizedSidecar(
    const int8_t* codes, std::vector<kernels::RowQuantParams> params) {
  assert(params.size() == rows_ && "sidecar params/rows mismatch");
  quantized_ = true;
  codes_.resize(rows_ * cols_);
  if (!codes_.empty()) {
    std::memcpy(codes_.data(), codes, codes_.size());
  }
  code_params_ = std::move(params);
  dequant_.resize(2 * rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float a = code_params_[r].scale * inv_norms_[r];
    dequant_[2 * r] = a;
    dequant_[2 * r + 1] = static_cast<float>(code_params_[r].zero) * a;
  }
}

void EmbeddingMatrix::EnableQuantization() {
  if (quantized_) return;
  quantized_ = true;
  codes_.resize(rows_ * cols_);
  code_params_.resize(rows_);
  dequant_.resize(2 * rows_);
  for (size_t r = 0; r < rows_; ++r) QuantizeRow(r);
}

void EmbeddingMatrix::DisableQuantization() {
  quantized_ = false;
  codes_.clear();
  codes_.shrink_to_fit();
  code_params_.clear();
  code_params_.shrink_to_fit();
  dequant_.clear();
  dequant_.shrink_to_fit();
}

void EmbeddingMatrix::QuantizeRow(size_t r) {
  code_params_[r] = kernels::QuantizeRowAffine(
      row_ptr(r), cols_, codes_.data() + r * cols_);
  const float a = code_params_[r].scale * inv_norms_[r];
  dequant_[2 * r] = a;
  dequant_[2 * r + 1] = static_cast<float>(code_params_[r].zero) * a;
}

void EmbeddingMatrix::Serialize(BinaryWriter* w) const {
  w->WriteU64(rows_);
  w->WriteU64(cols_);
  if (base_data_ == nullptr) {
    w->WriteF32Vector(data_);
    return;
  }
  // External mode: emit the identical bytes WriteF32Vector would for
  // the logical full block — count, then base segment, then delta — so
  // the byte format is storage-mode-independent.
  w->WriteU64(rows_ * cols_);
  w->WriteBytes(base_data_, base_rows_ * cols_ * sizeof(float));
  w->WriteBytes(data_.data(), data_.size() * sizeof(float));
}

void EmbeddingMatrix::AppendRowBytes(BinaryWriter* w) const {
  if (base_data_ != nullptr && base_rows_ > 0) {
    w->WriteBytes(base_data_, base_rows_ * cols_ * sizeof(float));
  }
  if (!data_.empty()) {
    w->WriteBytes(data_.data(), data_.size() * sizeof(float));
  }
}

Result<EmbeddingMatrix> EmbeddingMatrix::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t rows, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(uint64_t cols, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadF32Vector());
  // The data block is already bounds-checked against the buffer; the
  // geometry must multiply out to exactly its length (checked without
  // forming rows * cols, which can overflow).
  const bool consistent =
      cols == 0 ? data.empty()
                : (data.size() % cols == 0 && data.size() / cols == rows);
  if (!consistent) {
    return Status::ParseError("EmbeddingMatrix: geometry/data mismatch");
  }
  EmbeddingMatrix m;
  m.rows_ = static_cast<size_t>(rows);
  m.cols_ = static_cast<size_t>(cols);
  m.data_ = std::move(data);
  m.RecomputeInvNorms();
  return m;
}

QuantizedQuery MakeQuantizedQuery(VecView q) {
  QuantizedQuery out;
  out.codes.resize(q.size());
  const kernels::QueryQuantParams p =
      kernels::QuantizeSymmetric(q.data(), q.size(), out.codes.data());
  out.scale = p.scale;
  out.code_sum = p.code_sum;
  out.inv_norm = kernels::InvNorm(q.data(), q.size());
  return out;
}

void QuantizedCosineRows(const EmbeddingMatrix& m, const QuantizedQuery& q,
                         const int* rows, size_t nrows, float* out) {
  // Integer part first (exact at every dispatch level), then ONE
  // fixed-order float combine — the only place approximate scores are
  // assembled, so every caller ranks by the same bits. Processed in
  // blocks so the integer dots never leave L1 and the scan allocates
  // nothing (per-block results are identical to one whole-scan pass:
  // each row's value depends only on that row).
  constexpr size_t kBlock = 1024;
  int32_t idots[kBlock];
  const float sum_d = static_cast<float>(q.code_sum);
  const float q_combo = q.scale * q.inv_norm;
  const float* dq = m.dequant_pairs();
  for (size_t base = 0; base < nrows; base += kBlock) {
    const size_t count = std::min(kBlock, nrows - base);
    kernels::BatchedQuantizedDotRows(q.codes.data(), m.codes(), m.cols(),
                                     rows + base, count, idots);
    for (size_t i = 0; i < count; ++i) {
      // dq holds {scale * inv_norm, zero * scale * inv_norm} per row:
      // one contiguous 8-byte load instead of two gathers.
      const float* d = dq + 2 * static_cast<size_t>(rows[base + i]);
      out[base + i] =
          q_combo * (static_cast<float>(idots[i]) * d[0] - sum_d * d[1]);
    }
  }
}

}  // namespace tabbin
