#include "tensor/embedding_matrix.h"

#include <algorithm>
#include <cstring>

namespace tabbin {

void EmbeddingMatrix::Assign(size_t rows, size_t cols, const float* src) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  if (!data_.empty()) {
    std::memcpy(data_.data(), src, data_.size() * sizeof(float));
  }
}

void EmbeddingMatrix::AppendRow(VecView v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  const size_t n = std::min(cols_, v.size());
  data_.resize(data_.size() + cols_, 0.0f);
  float* dst = data_.data() + rows_ * cols_;
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  ++rows_;
}

}  // namespace tabbin
