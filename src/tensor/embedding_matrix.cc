#include "tensor/embedding_matrix.h"

#include <algorithm>
#include <cstring>

#include "tensor/kernels.h"

namespace tabbin {

void EmbeddingMatrix::Assign(size_t rows, size_t cols, const float* src) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  if (!data_.empty()) {
    std::memcpy(data_.data(), src, data_.size() * sizeof(float));
  }
  RecomputeInvNorms();
}

void EmbeddingMatrix::AppendRow(VecView v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  const size_t n = std::min(cols_, v.size());
  data_.resize(data_.size() + cols_, 0.0f);
  float* dst = data_.data() + rows_ * cols_;
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  ++rows_;
  // Norm of the STORED row (post pad/truncate), so the cache is exact
  // even for ragged inputs.
  inv_norms_.push_back(kernels::InvNorm(dst, cols_));
}

void EmbeddingMatrix::set_row(size_t r, VecView v) {
  float* dst = data_.data() + r * cols_;
  const size_t n = std::min(cols_, v.size());
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  if (n < cols_) std::memset(dst + n, 0, (cols_ - n) * sizeof(float));
  inv_norms_[r] = kernels::InvNorm(dst, cols_);
}

void EmbeddingMatrix::RecomputeInvNorms() {
  inv_norms_.resize(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    inv_norms_[r] = kernels::InvNorm(data_.data() + r * cols_, cols_);
  }
}

void EmbeddingMatrix::Serialize(BinaryWriter* w) const {
  w->WriteU64(rows_);
  w->WriteU64(cols_);
  w->WriteF32Vector(data_);
}

Result<EmbeddingMatrix> EmbeddingMatrix::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t rows, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(uint64_t cols, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadF32Vector());
  // The data block is already bounds-checked against the buffer; the
  // geometry must multiply out to exactly its length (checked without
  // forming rows * cols, which can overflow).
  const bool consistent =
      cols == 0 ? data.empty()
                : (data.size() % cols == 0 && data.size() / cols == rows);
  if (!consistent) {
    return Status::ParseError("EmbeddingMatrix: geometry/data mismatch");
  }
  EmbeddingMatrix m;
  m.rows_ = static_cast<size_t>(rows);
  m.cols_ = static_cast<size_t>(cols);
  m.data_ = std::move(data);
  m.RecomputeInvNorms();
  return m;
}

}  // namespace tabbin
