#include "tensor/embedding_matrix.h"

#include <algorithm>
#include <cstring>

namespace tabbin {

void EmbeddingMatrix::Assign(size_t rows, size_t cols, const float* src) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
  if (!data_.empty()) {
    std::memcpy(data_.data(), src, data_.size() * sizeof(float));
  }
}

void EmbeddingMatrix::AppendRow(VecView v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  const size_t n = std::min(cols_, v.size());
  data_.resize(data_.size() + cols_, 0.0f);
  float* dst = data_.data() + rows_ * cols_;
  if (n > 0) std::memcpy(dst, v.data(), n * sizeof(float));
  ++rows_;
}

void EmbeddingMatrix::Serialize(BinaryWriter* w) const {
  w->WriteU64(rows_);
  w->WriteU64(cols_);
  w->WriteF32Vector(data_);
}

Result<EmbeddingMatrix> EmbeddingMatrix::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t rows, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(uint64_t cols, r->ReadU64());
  TABBIN_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadF32Vector());
  // The data block is already bounds-checked against the buffer; the
  // geometry must multiply out to exactly its length (checked without
  // forming rows * cols, which can overflow).
  const bool consistent =
      cols == 0 ? data.empty()
                : (data.size() % cols == 0 && data.size() / cols == rows);
  if (!consistent) {
    return Status::ParseError("EmbeddingMatrix: geometry/data mismatch");
  }
  EmbeddingMatrix m;
  m.rows_ = static_cast<size_t>(rows);
  m.cols_ = static_cast<size_t>(cols);
  m.data_ = std::move(data);
  return m;
}

}  // namespace tabbin
