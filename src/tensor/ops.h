// Differentiable tensor operations.
//
// Every op computes its output eagerly and, when any input requires grad
// and tape recording is enabled, registers a backward closure that
// accumulates into the inputs' gradient buffers.
//
// Shape conventions: activations are [n, d] matrices (sequence length n,
// hidden d); vectors are rank-1 [d].
#ifndef TABBIN_TENSOR_OPS_H_
#define TABBIN_TENSOR_OPS_H_

#include <vector>

#include "tensor/embedding_matrix.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tabbin {

/// \brief Elementwise a + b; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
/// \brief Elementwise sum of k tensors with identical shape.
Tensor AddN(const std::vector<Tensor>& xs);
/// \brief Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// \brief Elementwise a * b (Hadamard).
Tensor Mul(const Tensor& a, const Tensor& b);
/// \brief a * scalar.
Tensor Scale(const Tensor& a, float s);
/// \brief Adds a rank-1 bias [d] to every row of a [n, d] matrix.
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);

/// \brief Matrix product [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// \brief Matrix transpose [n, m] -> [m, n].
Tensor Transpose(const Tensor& a);

/// \brief Row-wise softmax of a [n, m] matrix.
///
/// \param additive_mask Optional [n, m] matrix added to the logits before
/// the softmax (0 for visible, large-negative for hidden positions). The
/// mask is treated as a constant. This is how the TabBiN visibility matrix
/// enters the attention computation (paper eq. (1)).
Tensor SoftmaxRows(const Tensor& x, const Tensor* additive_mask = nullptr);

/// \brief Layer normalization over the last dimension of [n, d].
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// \brief Gaussian error linear unit (tanh approximation, as in BERT).
Tensor Gelu(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor TanhOp(const Tensor& x);

/// \brief Gathers rows of an embedding matrix: weight [V, d], ids (n) ->
/// [n, d]. Backward scatter-adds into the weight gradient.
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids);

/// \brief Concatenates matrices along columns: [n, d1], [n, d2] ->
/// [n, d1 + d2].
Tensor ConcatCols(const std::vector<Tensor>& xs);

/// \brief Selects rows by index: [n, d], (k) -> [k, d].
Tensor GatherRows(const Tensor& x, const std::vector<int>& rows);

/// \brief Contiguous row slice [start, start + len).
Tensor SliceRows(const Tensor& x, int start, int len);

/// \brief Mean over rows: [n, d] -> [d].
Tensor MeanRows(const Tensor& x);

/// \brief Sum of all elements -> scalar [1].
Tensor SumAll(const Tensor& x);
/// \brief Mean of all elements -> scalar [1].
Tensor MeanAll(const Tensor& x);

/// \brief Mean softmax cross-entropy of logits [n, V] against integer
/// targets; rows whose target equals `ignore_index` contribute nothing.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& targets,
                              int ignore_index = -1);

/// \brief Inverted dropout; identity when !training or p == 0.
Tensor DropoutOp(const Tensor& x, float p, Rng* rng, bool training);

/// \brief Numerically stable sigmoid, elementwise.
Tensor Sigmoid(const Tensor& x);

/// \brief Mean binary cross-entropy of logits (n) against {0,1} labels.
Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& labels);

/// \brief Cosine similarity of two float spans (not differentiable).
/// Accepts owned vectors and EmbeddingMatrix rows alike via VecView.
float CosineSimilarity(VecView a, VecView b);
inline float CosineSimilarity(const std::vector<float>& a,
                              const std::vector<float>& b) {
  return CosineSimilarity(VecView(a), VecView(b));
}

}  // namespace tabbin

#endif  // TABBIN_TENSOR_OPS_H_
