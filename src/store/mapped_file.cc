#include "store/mapped_file.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

// The POSIX backend. Everything syscall-shaped is confined to this
// translation unit (tabbin_lint `raw-mmap` allows only src/store/).
#if defined(__unix__) || defined(__APPLE__)
#define TABBIN_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TABBIN_STORE_HAVE_MMAP 0
#endif

namespace tabbin {

namespace {

// CI sets TABBIN_STORE_NO_MMAP=1 to force the portable heap path, so
// both legs stay tested on the platform that normally never takes the
// fallback.
bool MmapDisabledByEnv() {
  const char* env = std::getenv("TABBIN_STORE_NO_MMAP");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

Status ReadWholeFile(const std::string& path, uint64_t max_bytes,
                     std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status::IoError("MappedFile: cannot open '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("MappedFile: cannot seek '" + path + "'");
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("MappedFile: cannot stat '" + path + "'");
  }
  if (static_cast<uint64_t>(size) > max_bytes) {
    std::fclose(f);
    return Status::OutOfRange(
        "MappedFile: '" + path + "' is " + std::to_string(size) +
        " bytes, above the " + std::to_string(max_bytes) + " byte cap");
  }
  std::rewind(f);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(out->data(), 1, out->size(), f) != out->size()) {
    std::fclose(f);
    return Status::IoError("MappedFile: short read on '" + path + "'");
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    uint64_t max_bytes) {
  MappedFile mf;
  mf.path_ = path;
#if TABBIN_STORE_HAVE_MMAP
  if (!MmapDisabledByEnv()) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IoError("MappedFile: cannot open '" + path + "'");
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("MappedFile: cannot stat '" + path + "'");
    }
    if (static_cast<uint64_t>(st.st_size) > max_bytes) {
      ::close(fd);
      return Status::OutOfRange(
          "MappedFile: '" + path + "' is " + std::to_string(st.st_size) +
          " bytes, above the " + std::to_string(max_bytes) + " byte cap");
    }
    if (st.st_size == 0) {
      // mmap(len=0) is EINVAL; an empty file is a valid empty span.
      ::close(fd);
      return mf;
    }
    void* addr = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    // The descriptor is not needed once the mapping exists (POSIX keeps
    // the mapping valid after close) — and on mmap failure we fall
    // through to the heap path rather than erroring, so exotic
    // filesystems degrade instead of breaking.
    ::close(fd);
    if (addr != MAP_FAILED) {
      mf.data_ = static_cast<const uint8_t*>(addr);
      mf.size_ = static_cast<size_t>(st.st_size);
      mf.mapped_ = true;
      return mf;
    }
  }
#endif
  TABBIN_RETURN_IF_ERROR(ReadWholeFile(path, max_bytes, &mf.fallback_));
  mf.data_ = mf.fallback_.data();
  mf.size_ = mf.fallback_.size();
  mf.mapped_ = false;
  return mf;
}

void MappedFile::Advise(Advice advice) const {
#if TABBIN_STORE_HAVE_MMAP
  if (!mapped_ || size_ == 0) return;
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: native = MADV_NORMAL; break;
    case Advice::kSequential: native = MADV_SEQUENTIAL; break;
    case Advice::kRandom: native = MADV_RANDOM; break;
    case Advice::kWillNeed: native = MADV_WILLNEED; break;
  }
  // Best effort by contract; failure changes performance, not behavior.
  (void)::madvise(const_cast<uint8_t*>(data_), size_, native);
#else
  (void)advice;
#endif
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if TABBIN_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    (void)::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  path_ = std::move(other.path_);
  if (!mapped_) data_ = fallback_.empty() ? nullptr : fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

MappedFile::~MappedFile() {
#if TABBIN_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    (void)::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

size_t StorePageSize() {
#if TABBIN_STORE_HAVE_MMAP
  const long ps = ::sysconf(_SC_PAGESIZE);
  if (ps > 0) return static_cast<size_t>(ps);
#endif
  return 4096;
}

}  // namespace tabbin
