// Generation directories — crash-safe publication for paged snapshots.
//
// A mapped snapshot must never be rewritten in place: live readers hold
// page mappings into it, and truncation under a mapping is a SIGBUS,
// not an error code (see store/mapped_file.h). So a serving corpus that
// is saved repeatedly lives in a *generation directory*:
//
//   corpus.store/
//     gen-000001.tbsn      immutable v2 snapshot files, one per Save
//     gen-000002.tbsn
//     MANIFEST             three text lines naming the current one
//
// MANIFEST:
//   tbsn-generation-manifest v1
//   gen-000002.tbsn
//   2
//
// Publishing generation N+1 writes gen-<N+1>.tbsn (temp + fsync +
// rename), then swings MANIFEST the same way — the rename is the
// commit point. A crash at any step leaves the previous generation
// intact and current; a reader that resolved the manifest a moment
// before the swing keeps serving its (still-existing, still-immutable)
// file. Old generation files are deliberately NOT deleted here: a
// sibling process may still be mapping them. Pruning is an operator
// decision (delete any gen-*.tbsn the manifest no longer names).
#ifndef TABBIN_STORE_GENERATION_H_
#define TABBIN_STORE_GENERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tabbin {

/// \brief True when `path` names an existing directory — how Save/Load
/// tell "single snapshot file" from "generation directory".
bool IsDirectory(const std::string& path);

struct GenerationManifest {
  uint64_t generation = 0;
  std::string file;  // relative to the directory
};

/// \brief Parses `dir`/MANIFEST. NotFound when there is no manifest
/// (a fresh directory), ParseError on malformed contents.
Result<GenerationManifest> ReadGenerationManifest(const std::string& dir);

/// \brief Resolves the current generation to a full snapshot path,
/// verifying the named file actually exists (a manifest pointing at a
/// missing generation is ParseError, not a later open failure — the
/// distinction the corrupt-store tests pin).
Result<std::string> ResolveGeneration(const std::string& dir);

/// \brief Publishes `bytes` as the next generation of `dir`: writes
/// gen-<N+1>.tbsn, then atomically swings MANIFEST to it. Returns the
/// new generation number. `dir` must already exist.
Result<uint64_t> PublishGeneration(const std::string& dir,
                                   const std::vector<uint8_t>& bytes);

}  // namespace tabbin

#endif  // TABBIN_STORE_GENERATION_H_
