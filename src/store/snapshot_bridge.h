// Glue between the v1 stream container (util/snapshot.h) and the v2
// paged store (store/paged_snapshot.h), plus the path conventions the
// two save/load formats share.
//
// The model/options sections are metadata-sized, so the v2 format does
// not re-invent their byte layout: a writer renders them with the v1
// serializers into a scratch SnapshotWriter and bridges the bytes into
// the paged container verbatim (AppendBridgeSections); a reader copies
// them back out into a synthetic SnapshotReader (ExtractBridgeSections)
// and runs the unchanged v1 parsers. Only the bulk corpus state gets a
// v2-native, page-aligned layout (service/shard_store.cc).
#ifndef TABBIN_STORE_SNAPSHOT_BRIDGE_H_
#define TABBIN_STORE_SNAPSHOT_BRIDGE_H_

#include <string>

#include "store/paged_snapshot.h"
#include "util/snapshot.h"
#include "util/status.h"

namespace tabbin {

/// \brief Copies every section of `src` into `dst` byte-for-byte
/// (alignment 1 — bridged sections are metadata, not bulk blocks).
void AppendBridgeSections(const SnapshotWriter& src,
                          PagedSnapshotWriter* dst);

/// \brief Copies the bridged model/options sections ("tabbin.*" and
/// "service.options") out of a paged store into a synthetic v1 reader,
/// checksum-validating each. Sections a v1 parser never looks at
/// (bulk "store.*" state) are skipped.
Result<SnapshotReader> ExtractBridgeSections(
    const PagedSnapshotReader& reader);

/// \brief Maps a user-supplied path to the snapshot file to open: a
/// directory resolves through its generation MANIFEST
/// (store/generation.h), anything else is returned as-is.
Result<std::string> ResolveSnapshotPath(const std::string& path);

/// \brief Writes an assembled v2 snapshot to `path`: into an existing
/// directory as the next generation (MANIFEST swing), otherwise as a
/// single file via temp + fsync + atomic rename.
Status WriteStoreSnapshot(const std::string& path,
                          const PagedSnapshotWriter& w);

}  // namespace tabbin

#endif  // TABBIN_STORE_SNAPSHOT_BRIDGE_H_
