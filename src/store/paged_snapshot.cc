#include "store/paged_snapshot.h"

#include <cstdio>
#include <cstring>

#include "util/snapshot.h"

#if defined(__unix__) || defined(__APPLE__)
#define TABBIN_STORE_HAVE_POSIX_IO 1
#include <unistd.h>
#else
#define TABBIN_STORE_HAVE_POSIX_IO 0
#endif

namespace tabbin {

namespace {

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t AlignUp(uint64_t v, uint64_t align) {
  // align is pre-validated as a power of two <= kMaxStoreAlign and v is
  // bounded by the file size, so this cannot overflow.
  return (v + align - 1) & ~(align - 1);
}

Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::IoError("snapshot store: flush failed for '" + path + "'");
  }
#if TABBIN_STORE_HAVE_POSIX_IO
  if (::fsync(fileno(f)) != 0) {
    return Status::IoError("snapshot store: fsync failed for '" + path + "'");
  }
#endif
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return Status::IoError("snapshot store: cannot open '" + tmp +
                           "' for writing");
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("snapshot store: short write to '" + tmp + "'");
  }
  Status synced = FlushAndSync(f, tmp);
  std::fclose(f);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("snapshot store: cannot rename '" + tmp +
                           "' to '" + path + "'");
  }
  return Status::OK();
}

Result<uint32_t> PeekSnapshotVersion(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status::IoError("snapshot: cannot open '" + path + "'");
  }
  uint8_t head[8];
  const size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  if (got != sizeof(head)) {
    return Status::ParseError("snapshot: '" + path +
                              "' is too short to hold a TBSN header");
  }
  uint32_t magic, version;
  std::memcpy(&magic, head, sizeof(magic));
  std::memcpy(&version, head + 4, sizeof(version));
  if (magic != kSnapshotMagic) {
    return Status::ParseError("snapshot: '" + path +
                              "' does not start with the TBSN magic");
  }
  return version;
}

// --- Writer ---------------------------------------------------------------

BinaryWriter* PagedSnapshotWriter::AddSection(const std::string& name,
                                              uint64_t align) {
  for (auto& s : sections_) {
    if (s.name == name) return s.payload.get();
  }
  Section s;
  s.name = name;
  // Invalid alignments are a programming error on the write side; they
  // are clamped here and rejected loudly by the reader's validation, so
  // they can never produce a file that silently misparses.
  s.align = (IsPow2(align) && align <= kMaxStoreAlign) ? align : 1;
  s.payload = std::make_unique<BinaryWriter>();
  sections_.push_back(std::move(s));
  return sections_.back().payload.get();
}

std::vector<uint8_t> PagedSnapshotWriter::Assemble() const {
  // Pass 1: directory geometry. Entry = name (8 + bytes) + offset +
  // length + align + checksum (8 each).
  uint64_t header = 4 + 4 + 8 + 8;
  for (const auto& s : sections_) {
    header += 8 + s.name.size() + 8 * 4;
  }
  header += 8;  // directory checksum

  std::vector<uint64_t> offsets;
  offsets.reserve(sections_.size());
  uint64_t end = header;
  for (const auto& s : sections_) {
    const uint64_t off = AlignUp(end, s.align);
    offsets.push_back(off);
    end = off + s.payload->buffer().size();
  }

  // Pass 2: header + directory.
  BinaryWriter w;
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kPagedSnapshotVersion);
  w.WriteU64(sections_.size());
  w.WriteU64(header);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const auto& buf = sections_[i].payload->buffer();
    w.WriteString(sections_[i].name);
    w.WriteU64(offsets[i]);
    w.WriteU64(buf.size());
    w.WriteU64(sections_[i].align);
    w.WriteU64(Fnv1a64(buf.data(), buf.size()));
  }
  w.WriteU64(Fnv1a64(w.buffer().data(), w.buffer().size()));

  // Pass 3: padding + payloads.
  std::vector<uint8_t> out = std::move(w).TakeBuffer();
  out.reserve(static_cast<size_t>(end));
  for (size_t i = 0; i < sections_.size(); ++i) {
    out.resize(static_cast<size_t>(offsets[i]), 0);  // zero padding
    const auto& buf = sections_[i].payload->buffer();
    out.insert(out.end(), buf.begin(), buf.end());
  }
  return out;
}

Status PagedSnapshotWriter::ToFile(const std::string& path) const {
  return AtomicWriteFile(path, Assemble());
}

// --- Reader ---------------------------------------------------------------

Result<PagedSnapshotReader> PagedSnapshotReader::Open(const std::string& path,
                                                      uint64_t max_bytes) {
  TABBIN_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path, max_bytes));
  const ByteSpan bytes = file.bytes();

  constexpr uint64_t kFixedHeader = 4 + 4 + 8 + 8;
  if (bytes.size < kFixedHeader + 8) {
    return Status::ParseError("paged snapshot: file too small for a header");
  }
  uint32_t magic, version;
  uint64_t count, header;
  std::memcpy(&magic, bytes.data, 4);
  std::memcpy(&version, bytes.data + 4, 4);
  std::memcpy(&count, bytes.data + 8, 8);
  std::memcpy(&header, bytes.data + 16, 8);
  if (magic != kSnapshotMagic) {
    return Status::ParseError("paged snapshot: bad magic");
  }
  if (version != kPagedSnapshotVersion) {
    return Status::ParseError("paged snapshot: format version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kPagedSnapshotVersion) + ")");
  }
  if (count > kMaxStoreSections) {
    return Status::ParseError("paged snapshot: section count " +
                              std::to_string(count) + " exceeds cap");
  }
  if (header < kFixedHeader + 8 || header > bytes.size) {
    return Status::ParseError(
        "paged snapshot: header length field out of bounds");
  }

  // The directory checksum covers everything before it — a reader that
  // passes this check holds a directory whose every field the writer
  // wrote.
  uint64_t dir_checksum;
  std::memcpy(&dir_checksum, bytes.data + header - 8, 8);
  if (Fnv1a64(bytes.data, static_cast<size_t>(header - 8)) != dir_checksum) {
    return Status::ParseError("paged snapshot: directory checksum mismatch");
  }

  // Parse directory entries from a private copy of the header bytes.
  BinaryReader dir(std::vector<uint8_t>(
      bytes.data + kFixedHeader, bytes.data + (header - 8)));
  PagedSnapshotReader reader;
  reader.sections_.reserve(static_cast<size_t>(count));
  uint64_t prev_end = header;
  for (uint64_t i = 0; i < count; ++i) {
    SectionInfo info;
    TABBIN_ASSIGN_OR_RETURN(info.name, dir.ReadString());
    TABBIN_ASSIGN_OR_RETURN(info.offset, dir.ReadU64());
    TABBIN_ASSIGN_OR_RETURN(info.length, dir.ReadU64());
    TABBIN_ASSIGN_OR_RETURN(info.align, dir.ReadU64());
    TABBIN_ASSIGN_OR_RETURN(info.checksum, dir.ReadU64());
    if (info.name.empty()) {
      return Status::ParseError("paged snapshot: empty section name");
    }
    for (const auto& prev : reader.sections_) {
      if (prev.name == info.name) {
        return Status::ParseError("paged snapshot: duplicate section '" +
                                  info.name + "'");
      }
    }
    if (!IsPow2(info.align) || info.align > kMaxStoreAlign) {
      return Status::ParseError(
          "paged snapshot: section '" + info.name + "' alignment " +
          std::to_string(info.align) + " is not a power of two within cap");
    }
    // The offsets must reproduce the writer's AlignUp chain exactly:
    // any slack the directory claims beyond mandatory padding is a
    // forgery (hostile padding can otherwise smuggle unchecksummed
    // bytes or overlap sections).
    if (info.offset != AlignUp(prev_end, info.align)) {
      return Status::ParseError(
          "paged snapshot: section '" + info.name +
          "' offset disagrees with the alignment chain");
    }
    if (info.length > bytes.size || info.offset > bytes.size - info.length) {
      return Status::ParseError("paged snapshot: section '" + info.name +
                                "' extends past end of file");
    }
    prev_end = info.offset + info.length;
    reader.sections_.push_back(std::move(info));
  }
  if (!dir.AtEnd()) {
    return Status::ParseError(
        "paged snapshot: trailing bytes inside the directory");
  }
  if (prev_end != bytes.size) {
    return Status::ParseError(
        "paged snapshot: file size disagrees with the directory (" +
        std::to_string(bytes.size - prev_end) + " trailing bytes)");
  }

  reader.file_ = std::move(file);
  if (count > 0) {
    reader.checksum_state_ =
        std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      reader.checksum_state_[static_cast<size_t>(i)].store(
          0, std::memory_order_relaxed);
    }
  }
  return reader;
}

const PagedSnapshotReader::SectionInfo* PagedSnapshotReader::FindSection(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<const PagedSnapshotReader::SectionInfo*>
PagedSnapshotReader::RequireSection(const std::string& name) const {
  const SectionInfo* info = FindSection(name);
  if (!info) {
    return Status::NotFound("paged snapshot: no section named '" + name +
                            "'");
  }
  return info;
}

std::vector<std::string> PagedSnapshotReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& s : sections_) names.push_back(s.name);
  return names;
}

Status PagedSnapshotReader::ValidateInfo(const SectionInfo& info) const {
  const size_t idx = static_cast<size_t>(&info - sections_.data());
  std::atomic<uint8_t>& state = checksum_state_[idx];
  uint8_t cached = state.load(std::memory_order_acquire);
  if (cached == 0) {
    const uint64_t got =
        Fnv1a64(file_.bytes().data + info.offset,
                static_cast<size_t>(info.length));
    cached = (got == info.checksum) ? 1 : 2;
    state.store(cached, std::memory_order_release);
  }
  if (cached != 1) {
    return Status::ParseError("paged snapshot: checksum mismatch in section '" +
                              info.name + "'");
  }
  return Status::OK();
}

Result<ByteSpan> PagedSnapshotReader::SectionSpan(
    const std::string& name) const {
  TABBIN_ASSIGN_OR_RETURN(const SectionInfo* info, RequireSection(name));
  TABBIN_RETURN_IF_ERROR(ValidateInfo(*info));
  return ByteSpan{file_.bytes().data + info->offset,
                  static_cast<size_t>(info->length)};
}

Result<ByteSpan> PagedSnapshotReader::SectionSpanUnverified(
    const std::string& name) const {
  TABBIN_ASSIGN_OR_RETURN(const SectionInfo* info, RequireSection(name));
  return ByteSpan{file_.bytes().data + info->offset,
                  static_cast<size_t>(info->length)};
}

Result<BinaryReader> PagedSnapshotReader::Section(
    const std::string& name) const {
  TABBIN_ASSIGN_OR_RETURN(ByteSpan span, SectionSpan(name));
  return BinaryReader(
      std::vector<uint8_t>(span.data, span.data + span.size));
}

Status PagedSnapshotReader::ValidateSection(const std::string& name) const {
  TABBIN_ASSIGN_OR_RETURN(const SectionInfo* info, RequireSection(name));
  return ValidateInfo(*info);
}

Status PagedSnapshotReader::ValidateAll() const {
  for (const auto& info : sections_) {
    TABBIN_RETURN_IF_ERROR(ValidateInfo(info));
  }
  return Status::OK();
}

const char* PagedSnapshotReader::ChecksumState(const std::string& name) const {
  const SectionInfo* info = FindSection(name);
  if (!info) return "unknown-section";
  const size_t idx = static_cast<size_t>(info - sections_.data());
  switch (checksum_state_[idx].load(std::memory_order_acquire)) {
    case 1: return "ok";
    case 2: return "BAD";
    default: return "unchecked";
  }
}

}  // namespace tabbin
