// Read-only memory-mapped files — the storage primitive under the
// paged snapshot store (store/paged_snapshot.h).
//
// MappedFile::Open maps a whole file read-only and hands out its bytes
// as a stable span for the lifetime of the object (RAII unmap). Two
// backends sit behind the same type:
//
//  * POSIX mmap(PROT_READ, MAP_PRIVATE) — the real thing: pages fault
//    in lazily, the kernel page cache is shared across processes, and
//    RSS only grows with the pages actually touched;
//  * a portable read-into-heap fallback — used on non-POSIX builds, when
//    TABBIN_STORE_NO_MMAP=1 is set (CI exercises this leg), or when the
//    mmap call itself fails. Same bytes, same API, eager memory.
//
// This header is the ONLY sanctioned home for raw mmap/munmap calls in
// the tree (tabbin_lint rule `raw-mmap` enforces it): everything above
// speaks MappedFile, never the syscall.
//
// A note on fault semantics the callers must respect: a mapped file
// that is truncated by another process AFTER mapping turns page reads
// into SIGBUS — no userspace check can fully close that race. The
// snapshot store therefore never rewrites a published generation file
// in place; new state is always a NEW file plus an atomic manifest
// rename (store/generation.h), so a mapping, once opened, is backed by
// an immutable file.
#ifndef TABBIN_STORE_MAPPED_FILE_H_
#define TABBIN_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tabbin {

/// \brief A contiguous read-only view of bytes (no ownership).
struct ByteSpan {
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool empty() const { return size == 0; }
};

/// \brief A whole file, mapped read-only (or heap-loaded on the
/// fallback path). Move-only; unmaps/frees on destruction.
class MappedFile {
 public:
  /// \brief Maps `path` read-only. Missing/unreadable files come back
  /// as IoError. Zero-byte files map successfully with an empty span.
  /// `max_bytes` guards the fallback path (and hostile sizes generally)
  /// the same way BinaryReader::FromFile does.
  static Result<MappedFile> Open(
      const std::string& path,
      uint64_t max_bytes = kDefaultMaxMappedBytes);

  /// \brief Advisory access-pattern hints, forwarded to madvise where
  /// available and ignored elsewhere. Never fails: hints are best
  /// effort by contract.
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed };
  void Advise(Advice advice) const;

  ByteSpan bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }
  /// \brief True when the bytes live in a real kernel mapping (false on
  /// the heap fallback). Observability only — the API contract is
  /// identical either way.
  bool is_mapped() const { return mapped_; }
  const std::string& path() const { return path_; }

  // 64 GiB: far above any snapshot this system writes, low enough to
  // reject nonsense sizes before the fallback path tries to heap them.
  static constexpr uint64_t kDefaultMaxMappedBytes = 64ull << 30;

  /// \brief An empty view (no file). What Open replaces; also lets
  /// holders (PagedSnapshotReader) default-construct before opening.
  MappedFile() = default;

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;            // true: munmap on destruction
  std::vector<uint8_t> fallback_;  // heap copy when !mapped_
  std::string path_;
};

/// \brief The system page size (granularity mmap hands out); 4096 on
/// the fallback path so layout decisions stay deterministic.
size_t StorePageSize();

}  // namespace tabbin

#endif  // TABBIN_STORE_MAPPED_FILE_H_
