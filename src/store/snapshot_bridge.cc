#include "store/snapshot_bridge.h"

#include <map>
#include <utility>
#include <vector>

#include "store/generation.h"

namespace tabbin {

void AppendBridgeSections(const SnapshotWriter& src,
                          PagedSnapshotWriter* dst) {
  for (const auto& [name, writer] : src.sections()) {
    dst->AddSection(name)->WriteBytes(writer->buffer().data(),
                                      writer->buffer().size());
  }
}

Result<SnapshotReader> ExtractBridgeSections(
    const PagedSnapshotReader& reader) {
  std::map<std::string, std::vector<uint8_t>> sections;
  for (const PagedSnapshotReader::SectionInfo& info : reader.sections()) {
    const bool bridged = info.name.rfind("tabbin.", 0) == 0 ||
                         info.name == "service.options";
    if (!bridged) continue;
    TABBIN_ASSIGN_OR_RETURN(ByteSpan span, reader.SectionSpan(info.name));
    sections.emplace(info.name,
                     std::vector<uint8_t>(span.data, span.data + span.size));
  }
  return SnapshotReader::FromSections(std::move(sections));
}

Result<std::string> ResolveSnapshotPath(const std::string& path) {
  if (!IsDirectory(path)) return path;
  return ResolveGeneration(path);
}

Status WriteStoreSnapshot(const std::string& path,
                          const PagedSnapshotWriter& w) {
  if (IsDirectory(path)) {
    TABBIN_ASSIGN_OR_RETURN(uint64_t generation,
                            PublishGeneration(path, w.Assemble()));
    (void)generation;
    return Status::OK();
  }
  return w.ToFile(path);
}

}  // namespace tabbin
