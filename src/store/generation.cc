#include "store/generation.h"

#include <cstdio>
#include <cstring>

#include "store/paged_snapshot.h"

#if defined(__unix__) || defined(__APPLE__)
#define TABBIN_STORE_HAVE_POSIX_IO 1
#include <sys/stat.h>
#else
#define TABBIN_STORE_HAVE_POSIX_IO 0
#endif

namespace tabbin {

namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kManifestHeader[] = "tbsn-generation-manifest v1";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::fclose(f);
  return true;
}

std::string GenerationFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06llu.tbsn",
                static_cast<unsigned long long>(gen));
  return buf;
}

// One text line, stripped of the trailing newline (CRLF tolerated).
bool ReadLine(std::FILE* f, std::string* out) {
  out->clear();
  int c;
  while ((c = std::fgetc(f)) != EOF && c != '\n') {
    out->push_back(static_cast<char>(c));
  }
  if (!out->empty() && out->back() == '\r') out->pop_back();
  return c != EOF || !out->empty();
}

}  // namespace

bool IsDirectory(const std::string& path) {
#if TABBIN_STORE_HAVE_POSIX_IO
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
#else
  // Portable approximation: directories cannot be fopen'd for reading
  // as regular files, but a path that holds a MANIFEST is one of ours.
  return FileExists(JoinPath(path, kManifestName));
#endif
}

Result<GenerationManifest> ReadGenerationManifest(const std::string& dir) {
  const std::string path = JoinPath(dir, kManifestName);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status::NotFound("generation store: no MANIFEST in '" + dir + "'");
  }
  std::string header, file, gen_text;
  const bool ok = ReadLine(f, &header) && ReadLine(f, &file) &&
                  ReadLine(f, &gen_text);
  std::fclose(f);
  if (!ok || header != kManifestHeader) {
    return Status::ParseError("generation store: malformed MANIFEST in '" +
                              dir + "'");
  }
  // The named file must be a plain name inside the directory — a
  // manifest is data, and data must not redirect opens elsewhere.
  if (file.empty() || file.find('/') != std::string::npos ||
      file.find("..") != std::string::npos) {
    return Status::ParseError(
        "generation store: MANIFEST names an invalid file '" + file + "'");
  }
  GenerationManifest m;
  m.file = file;
  char* endp = nullptr;
  m.generation = std::strtoull(gen_text.c_str(), &endp, 10);
  if (gen_text.empty() || endp == nullptr || *endp != '\0') {
    return Status::ParseError(
        "generation store: MANIFEST generation number is not numeric");
  }
  return m;
}

Result<std::string> ResolveGeneration(const std::string& dir) {
  TABBIN_ASSIGN_OR_RETURN(GenerationManifest m, ReadGenerationManifest(dir));
  const std::string path = JoinPath(dir, m.file);
  if (!FileExists(path)) {
    return Status::ParseError("generation store: MANIFEST points at missing "
                              "generation file '" + m.file + "'");
  }
  return path;
}

Result<uint64_t> PublishGeneration(const std::string& dir,
                                   const std::vector<uint8_t>& bytes) {
  uint64_t next = 1;
  auto current = ReadGenerationManifest(dir);
  if (current.ok()) {
    next = current.value().generation + 1;
  } else if (current.status().code() != StatusCode::kNotFound) {
    // A corrupt manifest is surfaced, not clobbered: overwriting it
    // could orphan a generation some reader still expects to resolve.
    return current.status();
  }

  const std::string file = GenerationFileName(next);
  TABBIN_RETURN_IF_ERROR(AtomicWriteFile(JoinPath(dir, file), bytes));

  std::string manifest;
  manifest += kManifestHeader;
  manifest += '\n';
  manifest += file;
  manifest += '\n';
  manifest += std::to_string(next);
  manifest += '\n';
  std::vector<uint8_t> mbytes(manifest.begin(), manifest.end());
  TABBIN_RETURN_IF_ERROR(
      AtomicWriteFile(JoinPath(dir, kManifestName), mbytes));
  return next;
}

}  // namespace tabbin
