// TBSN v2 — the paged snapshot container behind mmap-backed serving.
//
// The v1 container (util/snapshot.h) is a stream: sections are packed
// back to back and the whole file is checksummed in one trailing
// FNV-1a, so a reader must touch every byte before parsing anything —
// O(corpus) work and O(corpus) heap on every cold start. v2 keeps the
// magic and the section vocabulary but lays the file out for mapping:
//
//   u32 magic           "TBSN" (same as v1)
//   u32 format version  2
//   u64 section count
//   u64 header bytes    (everything through the directory checksum)
//   per section, in file order:
//     string  name      (u64 length + bytes)
//     u64     offset    (absolute; == AlignUp(previous end, align))
//     u64     length    (payload bytes)
//     u64     align     (power of two; 1 = packed, 4096 = page-aligned)
//     u64     checksum  (FNV-1a 64 over the payload bytes)
//   u64 directory checksum  (FNV-1a 64 over file[0 .. header-8))
//   zero padding, then payloads at their aligned offsets
//
// Opening a v2 file validates ONLY the header: magic, version, the
// directory checksum, and the full offset/length/alignment chain
// (offsets must reproduce the AlignUp chain exactly and the last
// section must end at the file size — a directory that passes cannot
// index out of the mapping). Payload checksums are validated lazily,
// per section, on first parsed access, and the verdict is memoized.
// Bulk payloads served zero-copy (embedding row blocks, the table-JSON
// blob) are fetched with SectionSpanUnverified() so a cold start never
// scans them; `tabbin_cli inspect` and ValidateAll() still check every
// section when asked.
//
// Durability: ToFile never exposes a half-written snapshot — bytes go
// to a temp file, fsync, then one atomic rename (see also
// store/generation.h for the multi-generation directory workflow).
#ifndef TABBIN_STORE_PAGED_SNAPSHOT_H_
#define TABBIN_STORE_PAGED_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "store/mapped_file.h"
#include "util/serialize.h"
#include "util/status.h"

namespace tabbin {

inline constexpr uint32_t kPagedSnapshotVersion = 2;
/// Alignment used for bulk blocks (embedding rows, int8 codes): one
/// x86/common-ARM page, fixed so the byte format never depends on the
/// writing host's page size.
inline constexpr uint64_t kStoreBlockAlign = 4096;
/// Directory sanity caps — far above real snapshots, low enough that a
/// hostile header cannot drive giant allocations or overflow offset
/// arithmetic.
inline constexpr uint64_t kMaxStoreSections = 1u << 20;
inline constexpr uint64_t kMaxStoreAlign = 1u << 20;

/// \brief Writes `bytes` to `path` via temp file + fsync + atomic
/// rename: readers see the old content or the new, never a prefix.
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// \brief Reads just enough of `path` to classify it: the snapshot
/// format version (1 or 2) behind a validated magic. IoError on
/// open/short-read, ParseError on a foreign magic.
Result<uint32_t> PeekSnapshotVersion(const std::string& path);

/// \brief Assembles named, aligned sections into one v2 snapshot.
class PagedSnapshotWriter {
 public:
  /// \brief Starts (or resumes) a section. `align` is recorded on first
  /// add and must be a power of two <= kMaxStoreAlign; payload bytes
  /// land at the next multiple of it. Returned pointer stays valid for
  /// the writer's lifetime.
  BinaryWriter* AddSection(const std::string& name, uint64_t align = 1);

  std::vector<uint8_t> Assemble() const;

  /// \brief Assemble + AtomicWriteFile.
  Status ToFile(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    uint64_t align;
    std::unique_ptr<BinaryWriter> payload;
  };
  std::vector<Section> sections_;
};

/// \brief Maps and validates a v2 snapshot; hands out section views.
class PagedSnapshotReader {
 public:
  /// \brief What the directory records about one section.
  struct SectionInfo {
    std::string name;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint64_t align = 1;
    uint64_t checksum = 0;
  };

  /// \brief Maps the file and eagerly validates the header/directory
  /// only (see file comment). Corrupt directories are ParseError;
  /// payload corruption surfaces on (lazy) section validation.
  static Result<PagedSnapshotReader> Open(
      const std::string& path,
      uint64_t max_bytes = MappedFile::kDefaultMaxMappedBytes);

  bool HasSection(const std::string& name) const {
    return FindSection(name) != nullptr;
  }
  std::vector<std::string> SectionNames() const;
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// \brief Zero-copy payload view, checksum-validated on first call
  /// (memoized; later calls are free). ParseError on a checksum
  /// mismatch, NotFound for unknown names.
  Result<ByteSpan> SectionSpan(const std::string& name) const;

  /// \brief Zero-copy payload view with NO checksum pass — the serving
  /// path for bulk blocks, where an O(bytes) scan would defeat the
  /// O(ms) cold start. Bounds are still guaranteed by the validated
  /// directory; integrity of these sections is checked on demand by
  /// ValidateSection/ValidateAll (e.g. `tabbin_cli inspect`).
  Result<ByteSpan> SectionSpanUnverified(const std::string& name) const;

  /// \brief Checksum-validated copy of the payload behind a
  /// BinaryReader — the parsing path for metadata-sized sections.
  Result<BinaryReader> Section(const std::string& name) const;

  /// \brief Forces checksum validation of one / every section.
  Status ValidateSection(const std::string& name) const;
  Status ValidateAll() const;

  /// \brief Lazily-computed checksum verdict for inspect-style tools:
  /// "ok", "BAD", or "unchecked".
  const char* ChecksumState(const std::string& name) const;

  size_t file_size() const { return file_.size(); }
  bool is_mapped() const { return file_.is_mapped(); }
  const std::string& path() const { return file_.path(); }
  /// \brief Advisory hint over the whole mapping (see MappedFile).
  void Advise(MappedFile::Advice advice) const { file_.Advise(advice); }

 private:
  PagedSnapshotReader() = default;

  const SectionInfo* FindSection(const std::string& name) const;
  Result<const SectionInfo*> RequireSection(const std::string& name) const;
  Status ValidateInfo(const SectionInfo& info) const;

  MappedFile file_;
  std::vector<SectionInfo> sections_;  // in file order
  // Memoized lazy checksum verdicts, one per section, in sections_
  // order: 0 = unchecked, 1 = ok, 2 = mismatch. Atomic because mapped
  // snapshots are shared across query threads; first-toucher races are
  // benign (both writers compute the same verdict).
  std::unique_ptr<std::atomic<uint8_t>[]> checksum_state_;
};

}  // namespace tabbin

#endif  // TABBIN_STORE_PAGED_SNAPSHOT_H_
