// WordPiece tokenization: pre-tokenizer, greedy longest-match-first
// sub-word segmentation, and a frequency-based vocabulary trainer.
#ifndef TABBIN_TEXT_WORDPIECE_H_
#define TABBIN_TEXT_WORDPIECE_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace tabbin {

/// \brief Splits raw text into lower-cased word/number/punctuation units.
///
/// Numbers (including decimals like "20.3") come out as single units so the
/// embedding layer can recognize and [VAL]-encode them.
std::vector<std::string> PreTokenize(const std::string& text);

/// \brief Greedy longest-match-first WordPiece segmentation of one word.
///
/// Continuation pieces carry the conventional "##" prefix. Falls back to
/// [UNK] when no prefix of the remaining suffix is in the vocabulary.
std::vector<std::string> WordPieceSegment(const std::string& word,
                                          const Vocab& vocab,
                                          int max_word_len = 64);

/// \brief Trains a WordPiece vocabulary over a corpus of texts.
///
/// Whole words with frequency >= min_count are added directly; all single
/// characters and the most frequent sub-word fragments (as ## pieces) are
/// added up to max_size. This is the simplified trainer standing in for
/// the BioBERT vocabulary (DESIGN.md S2).
Vocab TrainWordPieceVocab(const std::vector<std::string>& corpus,
                          int max_size = 8000, int min_count = 2);

/// \brief Full pipeline: PreTokenize + WordPieceSegment over a text.
std::vector<std::string> Tokenize(const std::string& text, const Vocab& vocab);

/// \brief Tokenize and map to ids.
std::vector<int> TokenizeToIds(const std::string& text, const Vocab& vocab);

}  // namespace tabbin

#endif  // TABBIN_TEXT_WORDPIECE_H_
