#include "text/vocab.h"

#include "util/serialize.h"
#include "util/snapshot.h"

namespace tabbin {

Vocab::Vocab() {
  for (const char* t :
       {"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[VAL]"}) {
    AddToken(t);
  }
}

int Vocab::AddToken(const std::string& token) {
  auto it = token_to_id_.find(token);
  if (it != token_to_id_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  token_to_id_.emplace(token, id);
  return id;
}

int Vocab::GetId(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnkId : it->second;
}

void Vocab::Serialize(BinaryWriter* w) const {
  w->WriteU64(tokens_.size());
  for (const auto& t : tokens_) w->WriteString(t);
}

Result<Vocab> Vocab::Deserialize(BinaryReader* r) {
  TABBIN_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n < static_cast<uint64_t>(kNumSpecialTokens)) {
    return Status::ParseError("vocab stream missing special tokens");
  }
  Vocab v;
  for (uint64_t i = 0; i < n; ++i) {
    TABBIN_ASSIGN_OR_RETURN(std::string t, r->ReadString());
    if (i < static_cast<uint64_t>(kNumSpecialTokens)) {
      if (v.GetToken(static_cast<int>(i)) != t) {
        return Status::ParseError("vocab file special-token mismatch: " + t);
      }
      continue;
    }
    v.AddToken(t);
  }
  return v;
}

Status Vocab::Save(const std::string& path) const {
  SnapshotWriter snapshot;
  Serialize(snapshot.AddSection("vocab"));
  return snapshot.ToFile(path);
}

Result<Vocab> Vocab::Load(const std::string& path) {
  TABBIN_ASSIGN_OR_RETURN(SnapshotReader snapshot,
                          SnapshotReader::FromFile(path));
  TABBIN_ASSIGN_OR_RETURN(BinaryReader r, snapshot.Section("vocab"));
  return Deserialize(&r);
}

}  // namespace tabbin
