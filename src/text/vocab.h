// Token vocabulary with the special tokens used by TabBiN sequences.
//
// The paper takes its vocabulary from BioBERT; we train our own over the
// synthetic corpora (DESIGN.md substitution S2) but keep the same special
// tokens, including [VAL], which replaces every numeric literal in the
// token stream (paper §3.1 "Token").
#ifndef TABBIN_TEXT_VOCAB_H_
#define TABBIN_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace tabbin {

/// \brief Bidirectional token <-> id mapping.
class Vocab {
 public:
  // Ids of the special tokens, fixed at the front of every vocabulary.
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;
  static constexpr int kClsId = 2;
  static constexpr int kSepId = 3;
  static constexpr int kMaskId = 4;
  static constexpr int kValId = 5;  // numeric literal placeholder
  static constexpr int kNumSpecialTokens = 6;

  Vocab();

  /// \brief Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// \brief Id for the token, or kUnkId if unknown.
  int GetId(const std::string& token) const;

  bool Contains(const std::string& token) const {
    return token_to_id_.count(token) > 0;
  }

  /// \brief Token text for an id (must be in range).
  const std::string& GetToken(int id) const { return tokens_[static_cast<size_t>(id)]; }

  int size() const { return static_cast<int>(tokens_.size()); }

  /// \brief Writes the token list into a byte stream.
  void Serialize(BinaryWriter* w) const;

  /// \brief Inverse of Serialize; rejects streams whose special-token
  /// prefix does not match this build's special tokens.
  static Result<Vocab> Deserialize(BinaryReader* r);

  /// \brief File wrappers over Serialize/Deserialize using the versioned,
  /// checksummed snapshot container (section "vocab").
  Status Save(const std::string& path) const;
  static Result<Vocab> Load(const std::string& path);

  static bool IsSpecialId(int id) { return id < kNumSpecialTokens; }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> token_to_id_;
};

}  // namespace tabbin

#endif  // TABBIN_TEXT_VOCAB_H_
