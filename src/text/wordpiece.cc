#include "text/wordpiece.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "util/string_util.h"

namespace tabbin {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

bool IsDigitChar(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> PreTokenize(const std::string& text) {
  std::vector<std::string> out;
  const std::string lower = ToLower(text);
  size_t i = 0;
  const size_t n = lower.size();
  while (i < n) {
    const char c = lower[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsDigitChar(c)) {
      // Number unit: digits with optional single embedded '.' or ','
      // between digits ("20.3", "1,234").
      size_t j = i;
      while (j < n) {
        if (IsDigitChar(lower[j])) {
          ++j;
        } else if ((lower[j] == '.' || lower[j] == ',') && j + 1 < n &&
                   IsDigitChar(lower[j + 1])) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back(lower.substr(i, j - i));
      i = j;
      continue;
    }
    if (IsWordChar(c)) {
      size_t j = i;
      while (j < n && IsWordChar(lower[j]) && !IsDigitChar(lower[j])) ++j;
      out.push_back(lower.substr(i, j - i));
      i = j;
      continue;
    }
    // Punctuation / symbols are single-character units (±, %, etc. may be
    // multi-byte UTF-8; emit the full byte sequence of one code point).
    size_t j = i + 1;
    if ((c & 0x80) != 0) {
      while (j < n && (lower[j] & 0xC0) == 0x80) ++j;
    }
    out.push_back(lower.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> WordPieceSegment(const std::string& word,
                                          const Vocab& vocab,
                                          int max_word_len) {
  if (static_cast<int>(word.size()) > max_word_len) return {"[UNK]"};
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start < word.size()) {
    size_t end = word.size();
    std::string match;
    while (end > start) {
      std::string candidate = word.substr(start, end - start);
      if (start > 0) candidate = "##" + candidate;
      if (vocab.Contains(candidate)) {
        match = candidate;
        break;
      }
      --end;
    }
    if (match.empty()) return {"[UNK]"};
    pieces.push_back(std::move(match));
    start = end;
  }
  return pieces;
}

Vocab TrainWordPieceVocab(const std::vector<std::string>& corpus, int max_size,
                          int min_count) {
  std::unordered_map<std::string, int64_t> word_freq;
  for (const auto& text : corpus) {
    for (auto& w : PreTokenize(text)) ++word_freq[w];
  }

  Vocab vocab;
  // 1. Every single character seen anywhere (as both initial and ## piece)
  //    so segmentation can never dead-end on known characters.
  std::unordered_map<std::string, int64_t> char_freq;
  for (const auto& [w, f] : word_freq) {
    size_t i = 0;
    while (i < w.size()) {
      size_t j = i + 1;
      if ((w[i] & 0x80) != 0) {
        while (j < w.size() && (w[j] & 0xC0) == 0x80) ++j;
      }
      char_freq[w.substr(i, j - i)] += f;
      i = j;
    }
  }
  for (const auto& [ch, f] : char_freq) {
    vocab.AddToken(ch);
    vocab.AddToken("##" + ch);
  }

  // 2. Whole words by descending frequency.
  std::vector<std::pair<std::string, int64_t>> words(word_freq.begin(),
                                                     word_freq.end());
  std::sort(words.begin(), words.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  for (const auto& [w, f] : words) {
    if (vocab.size() >= max_size) break;
    if (f < min_count) break;
    vocab.AddToken(w);
  }

  // 3. Frequent suffix fragments as continuation pieces, so rare words
  //    decompose into meaningful units instead of characters.
  if (vocab.size() < max_size) {
    std::unordered_map<std::string, int64_t> frag_freq;
    for (const auto& [w, f] : words) {
      for (size_t start = 1; start < w.size(); ++start) {
        for (size_t len = 2; len <= 6 && start + len <= w.size(); ++len) {
          frag_freq[w.substr(start, len)] += f;
        }
      }
    }
    std::vector<std::pair<std::string, int64_t>> frags(frag_freq.begin(),
                                                       frag_freq.end());
    std::sort(frags.begin(), frags.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (const auto& [frag, f] : frags) {
      if (vocab.size() >= max_size) break;
      if (f < min_count * 4) break;
      vocab.AddToken("##" + frag);
    }
  }
  return vocab;
}

std::vector<std::string> Tokenize(const std::string& text,
                                  const Vocab& vocab) {
  std::vector<std::string> out;
  for (const auto& unit : PreTokenize(text)) {
    for (auto& piece : WordPieceSegment(unit, vocab)) {
      out.push_back(std::move(piece));
    }
  }
  return out;
}

std::vector<int> TokenizeToIds(const std::string& text, const Vocab& vocab) {
  std::vector<int> ids;
  for (const auto& piece : Tokenize(text, vocab)) {
    ids.push_back(vocab.GetId(piece));
  }
  return ids;
}

}  // namespace tabbin
