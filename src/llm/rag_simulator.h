// LLM + Retrieval-Augmented-Generation behavioural simulator (DESIGN.md
// substitution S6) for the paper's Table 14 comparison.
//
// The paper evaluates GPT-2, Llama2, GPT-3.5 and GPT-4 (the latter two
// with a Sycamore RAG front end) on the CC and TC tasks. Commercial LLM
// APIs are unavailable offline, and Table 14's finding is a *shape*:
//   - RAG markedly improves every LLM;
//   - RAG+GPT-4 achieves near-perfect MRR (its first answer is almost
//     always right) yet loses to TabBiN on MAP (its full top-20 ranking
//     is weaker).
// The simulator reproduces the mechanism behind that shape: a lexical
// BM25 retriever (the RAG stage) plus a re-ranker whose two quality knobs
// — first-hit accuracy and tail fidelity — are calibrated per simulated
// model from the paper's published deltas. It runs through the exact same
// MAP/MRR evaluation harness as every real model in this repository.
#ifndef TABBIN_LLM_RAG_SIMULATOR_H_
#define TABBIN_LLM_RAG_SIMULATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "tasks/metrics.h"
#include "tensor/embedding_matrix.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace tabbin {

/// \brief A retrievable document (serialized table or column) with its
/// ground-truth cluster label.
struct RagDocument {
  std::string text;
  std::string label;
};

/// \brief BM25 lexical retriever over RagDocuments — the "RAG" stage.
class Bm25Retriever {
 public:
  explicit Bm25Retriever(double k1 = 1.2, double b = 0.75);

  void Index(const std::vector<RagDocument>& docs);

  /// \brief Appends documents incrementally: postings and length stats
  /// are extended and the idf table recomputed once per batch. The
  /// resulting state is identical to re-Indexing the full document list.
  void AddAll(const std::vector<RagDocument>& docs);
  void Add(const RagDocument& doc) { AddAll({doc}); }

  size_t size() const { return doc_terms_.size(); }

  /// \brief Indices of the top-k documents for a text query, best first.
  /// `exclude` removes the query document itself.
  std::vector<int> Retrieve(const std::string& query, int k,
                            int exclude = -1) const;

 private:
  double Score(const std::vector<std::string>& query_terms, int doc) const;

  // Tokenizes one document into postings/length stats (no idf update).
  void AppendDoc(const RagDocument& doc);
  // Recomputes idf for every term (document count changed).
  void RecomputeIdf();

  double k1_, b_;
  std::vector<std::vector<std::string>> doc_terms_;
  std::vector<double> doc_len_;
  double total_len_ = 0;
  double avg_len_ = 0;
  std::unordered_map<std::string, std::vector<int>> postings_;
  std::unordered_map<std::string, double> idf_;
};

/// \brief Quality profile of a simulated LLM ranker.
struct LlmProfile {
  std::string name;
  // Probability that the model places a correct item at rank 1 when the
  // retrieval pool contains one.
  double first_hit_accuracy = 0.5;
  // Fidelity of the rest of the ranking: 1 keeps the retriever's order,
  // 0 shuffles it completely.
  double tail_fidelity = 0.5;
  bool uses_rag = false;  // without RAG the pool itself is noisy
};

/// \brief Calibrated profiles reproducing Table 14's ordering:
/// gpt2 < llama2 < llama2+rag < gpt3.5+rag < gpt4+rag.
LlmProfile ProfileFor(const std::string& model_name);

/// \brief Simulated LLM ranking pipeline.
class RagLlmSimulator {
 public:
  RagLlmSimulator(const LlmProfile& profile, uint64_t seed = 4242);

  void Index(const std::vector<RagDocument>& docs);

  /// \brief Like Index, but additionally grounds the RAG stage in dense
  /// embeddings: row i of `embeddings` embeds docs[i] (flat [n, dim]
  /// storage). The retrieval pool becomes the union of the BM25 top-k and
  /// the cosine top-k over the embedding matrix, so lexically disjoint
  /// but semantically close documents stay retrievable.
  ///
  /// InvalidArgument when the embedding row count does not match the
  /// document count; the simulator is left indexed lexical-only.
  Status Index(const std::vector<RagDocument>& docs,
               EmbeddingMatrix embeddings);

  /// \brief Ranked document indices for a query document (top-k cluster),
  /// mimicking "prompt the LLM with the retrieved candidates".
  std::vector<int> RankFor(int query_index, int k);

  /// \brief Full MAP/MRR evaluation over all documents as queries.
  struct EvalResult {
    double map = 0;
    double mrr = 0;
  };
  EvalResult Evaluate(int k = 20, int max_queries = 200);

  /// \brief Persists the grounding index — documents plus the dense
  /// embedding matrix — to a versioned snapshot (sections "rag.docs",
  /// "rag.dense"). The BM25 postings are derived state and are rebuilt
  /// on load.
  Status SaveIndex(const std::string& path) const;

  /// \brief Restores an index saved with SaveIndex; afterwards RankFor /
  /// Evaluate behave identically to the simulator that saved it (given
  /// equal RNG state). Quantized retrieval is in-memory state, never
  /// persisted: a simulator that has it enabled keeps it across
  /// LoadIndex (the sidecar is rebuilt for the loaded matrix), but a
  /// fresh simulator loading the same file starts on the exact path.
  Status LoadIndex(const std::string& path);

  /// \brief Switches DenseRetrieve to the two-stage int8 scan: an
  /// approximate quantized pass over all documents cuts the pool to
  /// (k * shortlist_multiplier) before the exact float cosine top-k.
  /// Builds the code sidecar for the current dense matrix (and Index /
  /// LoadIndex rebuild it for new matrices). Pass on=false to restore
  /// the exact full scan.
  void EnableQuantizedRetrieval(bool on = true, int shortlist_multiplier = 4);

 private:
  /// \brief Indices of the top-k documents by cosine similarity to the
  /// query row of the dense matrix (empty when no dense index is set).
  std::vector<int> DenseRetrieve(int query_index, int k) const;

  LlmProfile profile_;
  Rng rng_;
  std::vector<RagDocument> docs_;
  Bm25Retriever retriever_;
  EmbeddingMatrix dense_;  // [docs, dim]; empty when lexical-only
  bool quantized_retrieval_ = false;
  int quantized_shortlist_multiplier_ = 4;
};

}  // namespace tabbin

#endif  // TABBIN_LLM_RAG_SIMULATOR_H_
