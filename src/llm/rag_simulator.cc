#include "llm/rag_simulator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/kernels.h"
#include "text/wordpiece.h"
#include "util/logging.h"

namespace tabbin {

Bm25Retriever::Bm25Retriever(double k1, double b) : k1_(k1), b_(b) {}

void Bm25Retriever::Index(const std::vector<RagDocument>& docs) {
  doc_terms_.clear();
  doc_len_.clear();
  postings_.clear();
  idf_.clear();
  total_len_ = 0;
  doc_terms_.reserve(docs.size());
  for (int i = 0; i < static_cast<int>(docs.size()); ++i) {
    std::vector<std::string> terms =
        PreTokenize(docs[static_cast<size_t>(i)].text);
    total_len_ += static_cast<double>(terms.size());
    std::unordered_set<std::string> unique(terms.begin(), terms.end());
    for (const auto& t : unique) postings_[t].push_back(i);
    doc_len_.push_back(static_cast<double>(terms.size()));
    doc_terms_.push_back(std::move(terms));
  }
  avg_len_ =
      docs.empty() ? 0 : total_len_ / static_cast<double>(docs.size());
  RecomputeIdf();
}

void Bm25Retriever::AppendDoc(const RagDocument& doc) {
  const int i = static_cast<int>(doc_terms_.size());
  std::vector<std::string> terms = PreTokenize(doc.text);
  total_len_ += static_cast<double>(terms.size());
  std::unordered_set<std::string> unique(terms.begin(), terms.end());
  // Posting lists stay ascending: i is the largest doc id so far.
  for (const auto& t : unique) postings_[t].push_back(i);
  doc_len_.push_back(static_cast<double>(terms.size()));
  doc_terms_.push_back(std::move(terms));
}

void Bm25Retriever::AddAll(const std::vector<RagDocument>& docs) {
  if (docs.empty()) return;
  for (const RagDocument& doc : docs) AppendDoc(doc);
  avg_len_ = total_len_ / static_cast<double>(doc_terms_.size());
  RecomputeIdf();
}

void Bm25Retriever::RecomputeIdf() {
  const double n = static_cast<double>(doc_terms_.size());
  for (const auto& [term, posting] : postings_) {
    const double df = static_cast<double>(posting.size());
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
}

double Bm25Retriever::Score(const std::vector<std::string>& query_terms,
                            int doc) const {
  double score = 0;
  const auto& terms = doc_terms_[static_cast<size_t>(doc)];
  for (const auto& q : query_terms) {
    auto idf_it = idf_.find(q);
    if (idf_it == idf_.end()) continue;
    int tf = 0;
    for (const auto& t : terms) {
      if (t == q) ++tf;
    }
    if (tf == 0) continue;
    const double denom =
        tf + k1_ * (1 - b_ + b_ * doc_len_[static_cast<size_t>(doc)] /
                                 std::max(avg_len_, 1e-9));
    score += idf_it->second * tf * (k1_ + 1) / denom;
  }
  return score;
}

std::vector<int> Bm25Retriever::Retrieve(const std::string& query, int k,
                                         int exclude) const {
  std::vector<std::string> query_terms = PreTokenize(query);
  // Candidate set from postings (documents sharing any term).
  std::unordered_set<int> candidates;
  for (const auto& q : query_terms) {
    auto it = postings_.find(q);
    if (it == postings_.end()) continue;
    for (int d : it->second) candidates.insert(d);
  }
  candidates.erase(exclude);
  std::vector<std::pair<double, int>> scored;
  scored.reserve(candidates.size());
  for (int d : candidates) {
    scored.emplace_back(Score(query_terms, d), d);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int> out;
  for (const auto& [s, d] : scored) {
    if (static_cast<int>(out.size()) >= k) break;
    out.push_back(d);
  }
  return out;
}

LlmProfile ProfileFor(const std::string& model_name) {
  // Calibrated to the ordering and gaps of the paper's Table 14.
  if (model_name == "gpt2") return {"gpt2", 0.25, 0.15, false};
  if (model_name == "llama2") return {"llama2", 0.35, 0.25, false};
  if (model_name == "gpt2+rag") return {"gpt2+rag", 0.45, 0.35, true};
  if (model_name == "llama2+rag") return {"llama2+rag", 0.60, 0.45, true};
  if (model_name == "gpt3.5+rag") return {"gpt3.5+rag", 0.85, 0.55, true};
  if (model_name == "gpt4+rag") return {"gpt4+rag", 0.99, 0.65, true};
  TABBIN_LOG(WARNING) << "unknown LLM profile: " << model_name;
  return {"unknown", 0.5, 0.5, false};
}

RagLlmSimulator::RagLlmSimulator(const LlmProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed) {}

void RagLlmSimulator::Index(const std::vector<RagDocument>& docs) {
  docs_ = docs;
  retriever_.Index(docs_);
  dense_.Clear();
}

Status RagLlmSimulator::Index(const std::vector<RagDocument>& docs,
                              EmbeddingMatrix embeddings) {
  Index(docs);
  if (embeddings.rows() != docs.size()) {
    return Status::InvalidArgument(
        "RagLlmSimulator::Index: " + std::to_string(embeddings.rows()) +
        " embedding rows for " + std::to_string(docs.size()) + " documents");
  }
  dense_ = std::move(embeddings);
  // Callers commonly fill the matrix through raw data() (no cache
  // maintenance); the cached inverse norms MUST match the rows before
  // DenseRetrieve's batched cosine pass reads them.
  dense_.RecomputeInvNorms();
  if (quantized_retrieval_) dense_.EnableQuantization();
  return Status::OK();
}

void RagLlmSimulator::EnableQuantizedRetrieval(bool on,
                                               int shortlist_multiplier) {
  quantized_retrieval_ = on;
  quantized_shortlist_multiplier_ = std::max(1, shortlist_multiplier);
  if (on) {
    dense_.EnableQuantization();
  } else {
    dense_.DisableQuantization();
  }
}

Status RagLlmSimulator::SaveIndex(const std::string& path) const {
  SnapshotWriter snapshot;
  BinaryWriter* docs = snapshot.AddSection("rag.docs");
  docs->WriteU64(docs_.size());
  for (const RagDocument& d : docs_) {
    docs->WriteString(d.text);
    docs->WriteString(d.label);
  }
  dense_.Serialize(snapshot.AddSection("rag.dense"));
  return snapshot.ToFile(path);
}

Status RagLlmSimulator::LoadIndex(const std::string& path) {
  TABBIN_ASSIGN_OR_RETURN(SnapshotReader snapshot,
                          SnapshotReader::FromFile(path));
  TABBIN_ASSIGN_OR_RETURN(BinaryReader docs_r, snapshot.Section("rag.docs"));
  TABBIN_ASSIGN_OR_RETURN(uint64_t n, docs_r.ReadU64());
  std::vector<RagDocument> docs;
  docs.reserve(static_cast<size_t>(
      std::min<uint64_t>(n, docs_r.remaining() / (2 * sizeof(uint64_t)))));
  for (uint64_t i = 0; i < n; ++i) {
    RagDocument d;
    TABBIN_ASSIGN_OR_RETURN(d.text, docs_r.ReadString());
    TABBIN_ASSIGN_OR_RETURN(d.label, docs_r.ReadString());
    docs.push_back(std::move(d));
  }
  TABBIN_ASSIGN_OR_RETURN(BinaryReader dense_r, snapshot.Section("rag.dense"));
  TABBIN_ASSIGN_OR_RETURN(EmbeddingMatrix dense,
                          EmbeddingMatrix::Deserialize(&dense_r));
  if (!dense.empty() && dense.rows() != docs.size()) {
    return Status::ParseError("rag snapshot: dense rows do not match docs");
  }
  Index(docs);  // rebuilds BM25 postings and clears the dense index
  dense_ = std::move(dense);
  if (quantized_retrieval_) dense_.EnableQuantization();
  return Status::OK();
}

std::vector<int> RagLlmSimulator::DenseRetrieve(int query_index, int k) const {
  if (dense_.empty() || k <= 0) return {};
  const VecView q = dense_.row(static_cast<size_t>(query_index));
  // One norm-free batched kernel pass over the grounding matrix (cached
  // per-row inverse norms; the query is a row of the same matrix, so its
  // norm is cached too), then nth_element top-k selection — (score desc,
  // doc asc) is a total order, so the selected prefix equals the old
  // full-sort-then-truncate output exactly.
  std::vector<int> rows;
  rows.reserve(dense_.rows());
  for (int d = 0; d < static_cast<int>(dense_.rows()); ++d) {
    if (d != query_index) rows.push_back(d);
  }
  // Two-stage scan: an int8 approximate pass cuts the pool before the
  // exact scoring below. Skipped when the pool already fits in the
  // shortlist, so small corpora stay byte-identical to the exact path.
  const size_t shortlist =
      static_cast<size_t>(k) *
      static_cast<size_t>(quantized_shortlist_multiplier_);
  if (quantized_retrieval_ && dense_.quantized() && rows.size() > shortlist) {
    const QuantizedQuery qq = MakeQuantizedQuery(q);
    std::vector<float> approx(rows.size());
    QuantizedCosineRows(dense_, qq, rows.data(), rows.size(), approx.data());
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + shortlist, order.end(),
                     [&](size_t a, size_t b) {
                       if (approx[a] != approx[b]) return approx[a] > approx[b];
                       return rows[a] < rows[b];
                     });
    std::vector<int> kept(shortlist);
    for (size_t i = 0; i < shortlist; ++i) kept[i] = rows[order[i]];
    std::sort(kept.begin(), kept.end());  // restore ascending-doc order
    rows = std::move(kept);
  }
  std::vector<float> scores(rows.size());
  kernels::BatchedCosineRows(
      q.data(), dense_.inv_norm(static_cast<size_t>(query_index)),
      dense_.data(), dense_.cols(), rows.data(), rows.size(),
      dense_.inv_norms(), scores.data());
  std::vector<std::pair<float, int>> scored;
  scored.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    scored.emplace_back(scores[i], rows[i]);
  }
  const auto order = [](const std::pair<float, int>& a,
                        const std::pair<float, int>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  if (static_cast<size_t>(k) < scored.size()) {
    std::nth_element(scored.begin(), scored.begin() + k, scored.end(),
                     order);
    scored.resize(static_cast<size_t>(k));
  }
  std::sort(scored.begin(), scored.end(), order);
  std::vector<int> out;
  out.reserve(scored.size());
  for (const auto& [s, d] : scored) out.push_back(d);
  return out;
}

std::vector<int> RagLlmSimulator::RankFor(int query_index, int k) {
  // RAG stage: with RAG the retrieval pool is the BM25 top-3k (unioned
  // with the dense cosine top-k when an embedding index is set); without
  // it the "context" the model sees is a noisy sample of the corpus.
  std::vector<int> pool;
  if (profile_.uses_rag) {
    pool = retriever_.Retrieve(docs_[static_cast<size_t>(query_index)].text,
                               3 * k, query_index);
    std::unordered_set<int> in_pool(pool.begin(), pool.end());
    for (int d : DenseRetrieve(query_index, k)) {
      if (in_pool.insert(d).second) pool.push_back(d);
    }
  } else {
    pool = retriever_.Retrieve(docs_[static_cast<size_t>(query_index)].text,
                               k, query_index);
    // Dilute with random documents (the un-grounded LLM hallucination
    // analog): half the pool is random.
    for (int i = 0; i < 2 * k; ++i) {
      int d = static_cast<int>(rng_.Uniform(docs_.size()));
      if (d != query_index) pool.push_back(d);
    }
  }
  if (pool.empty()) return pool;

  // Tail fidelity: degrade the retriever's ordering by random swaps.
  const int shuffles =
      static_cast<int>((1.0 - profile_.tail_fidelity) * pool.size() * 1.5);
  for (int s = 0; s < shuffles; ++s) {
    size_t i = rng_.Uniform(pool.size());
    size_t j = rng_.Uniform(pool.size());
    std::swap(pool[i], pool[j]);
  }

  // First-hit behaviour: with probability first_hit_accuracy, promote a
  // correct document (if the pool contains one) to rank 1.
  if (rng_.Bernoulli(profile_.first_hit_accuracy)) {
    const std::string& label = docs_[static_cast<size_t>(query_index)].label;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (docs_[static_cast<size_t>(pool[i])].label == label) {
        std::rotate(pool.begin(), pool.begin() + static_cast<long>(i),
                    pool.begin() + static_cast<long>(i) + 1);
        break;
      }
    }
  }
  if (static_cast<int>(pool.size()) > k) pool.resize(static_cast<size_t>(k));
  return pool;
}

RagLlmSimulator::EvalResult RagLlmSimulator::Evaluate(int k,
                                                      int max_queries) {
  std::vector<int> queries(docs_.size());
  for (size_t i = 0; i < docs_.size(); ++i) queries[i] = static_cast<int>(i);
  rng_.Shuffle(&queries);
  if (static_cast<int>(queries.size()) > max_queries) {
    queries.resize(static_cast<size_t>(max_queries));
  }
  std::unordered_map<std::string, int> label_count;
  for (const RagDocument& d : docs_) ++label_count[d.label];
  std::vector<std::vector<bool>> runs;
  std::vector<int> totals;
  for (int q : queries) {
    std::vector<int> ranked = RankFor(q, k);
    std::vector<bool> rel;
    rel.reserve(ranked.size());
    for (int d : ranked) {
      rel.push_back(docs_[static_cast<size_t>(d)].label ==
                    docs_[static_cast<size_t>(q)].label);
    }
    runs.push_back(std::move(rel));
    totals.push_back(label_count[docs_[static_cast<size_t>(q)].label] - 1);
  }
  EvalResult result;
  // Same normalization as EvaluateClustering: AP is bounded by the
  // query's relevant population, so an LLM whose top-k misses cluster
  // members is penalized for them.
  result.map = MeanAveragePrecision(runs, k, totals);
  result.mrr = MeanReciprocalRank(runs, k);
  return result;
}

}  // namespace tabbin
