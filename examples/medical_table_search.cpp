// Domain scenario: table search over a medical corpus (the application
// the paper's introduction motivates — finding tables similar to a given
// table to aid search and data fusion).
//
//   $ ./build/examples/medical_table_search
//
// Builds a CancerKG-like corpus, pre-trains TabBiN, serves the
// "find tables like this one" query through the TabBinService facade
// (LSH-blocked, engine-cached), and compares the structure-aware
// composite embedding against a plain text baseline.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/word2vec.h"
#include "datagen/corpus_gen.h"
#include "service/table_service.h"
#include "tensor/ops.h"

using namespace tabbin;

int main() {
  GeneratorOptions gen;
  gen.num_tables = 60;
  gen.seed = 19;
  LabeledCorpus data = GenerateDataset("cancerkg", gen);

  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.pretrain_steps = 50;
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(data.corpus.tables, cfg));
  sys->Pretrain(data.corpus.tables);

  // The serving facade owns the encode → index → query lifecycle; the
  // whole corpus is batch-encoded across the thread pool on insert.
  TabBinService service(sys);
  auto added = service.AddTables(data.corpus.tables);
  if (!added.ok()) {
    std::fprintf(stderr, "error: %s\n", added.status().ToString().c_str());
    return 1;
  }

  // Text baseline for comparison.
  Word2VecConfig wcfg;
  wcfg.dim = 64;
  Word2Vec w2v(wcfg);
  std::vector<std::string> sentences;
  for (const auto& t : data.corpus.tables) {
    for (auto& s : SerializeTuples(t)) sentences.push_back(std::move(s));
  }
  w2v.Train(sentences);

  // Query: the first nested table in the corpus (the hard case).
  int query = -1;
  for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
    if (data.corpus.tables[i].HasNesting()) {
      query = static_cast<int>(i);
      break;
    }
  }
  if (query < 0) query = 0;
  const Table& qt = data.corpus.tables[static_cast<size_t>(query)];
  std::printf("query table: '%s'\n  topic=%s  %dx%d  nested=%s\n\n",
              qt.caption().c_str(), qt.topic().c_str(), qt.rows(), qt.cols(),
              qt.HasNesting() ? "yes" : "no");

  // TabBiN answers through the service: LSH candidates, exact cosine,
  // self excluded — the exact code path a production caller uses.
  auto response = service.SimilarTables({qt.id(), nullptr, 5});
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("TabBiN (service) top-5 similar tables:\n");
  int correct = 0;
  for (const auto& m : response.value().matches) {
    // Recover the topic through the corpus (the service response carries
    // id + caption + score).
    std::string topic;
    for (const auto& t : data.corpus.tables) {
      if (t.id() == m.table_id) topic = t.topic();
    }
    const bool match = topic == qt.topic();
    correct += match;
    std::printf("  %.3f  [%s] %-22s %s\n", m.score, match ? "ok " : "x  ",
                topic.c_str(), m.caption.c_str());
  }
  std::printf("  topic precision@5: %d/5\n\n", correct);

  // Word2Vec baseline: manual embed + rank (no structure awareness).
  // Documents serialize the same way the service's Ask index does.
  EmbeddingMatrix w2v_emb;
  for (const auto& t : data.corpus.tables) {
    w2v_emb.AppendRow(w2v.Embed(ServiceDocumentText(t)));
  }
  std::vector<std::pair<float, int>> scored;
  for (int i = 0; i < static_cast<int>(w2v_emb.rows()); ++i) {
    if (i == query) continue;
    scored.emplace_back(
        CosineSimilarity(w2v_emb.row(static_cast<size_t>(query)),
                         w2v_emb.row(static_cast<size_t>(i))),
        i);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("Word2Vec top-5 similar tables:\n");
  correct = 0;
  for (int k = 0; k < 5 && k < static_cast<int>(scored.size()); ++k) {
    const Table& t = data.corpus.tables[static_cast<size_t>(
        scored[static_cast<size_t>(k)].second)];
    const bool match = t.topic() == qt.topic();
    correct += match;
    std::printf("  %.3f  [%s] %-22s %s\n", scored[static_cast<size_t>(k)].first,
                match ? "ok " : "x  ", t.topic().c_str(), t.caption().c_str());
  }
  std::printf("  topic precision@5: %d/5\n", correct);
  return 0;
}
