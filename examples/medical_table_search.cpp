// Domain scenario: table search over a medical corpus (the application
// the paper's introduction motivates — finding tables similar to a given
// table to aid search and data fusion).
//
//   $ ./build/examples/medical_table_search
//
// Builds a CancerKG-like corpus, pre-trains TabBiN, and answers a
// "find tables like this one" query with top-5 results, comparing the
// structure-aware composite embedding against a plain text baseline.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/word2vec.h"
#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "tensor/ops.h"

using namespace tabbin;

int main() {
  GeneratorOptions gen;
  gen.num_tables = 60;
  gen.seed = 19;
  LabeledCorpus data = GenerateDataset("cancerkg", gen);

  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.pretrain_steps = 50;
  TabBiNSystem sys = TabBiNSystem::Create(data.corpus.tables, cfg);
  sys.Pretrain(data.corpus.tables);

  // Text baseline for comparison.
  Word2VecConfig wcfg;
  wcfg.dim = 64;
  Word2Vec w2v(wcfg);
  std::vector<std::string> sentences;
  for (const auto& t : data.corpus.tables) {
    for (auto& s : SerializeTuples(t)) sentences.push_back(std::move(s));
  }
  w2v.Train(sentences);

  // Query: the first nested table in the corpus (the hard case).
  int query = -1;
  for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
    if (data.corpus.tables[i].HasNesting()) {
      query = static_cast<int>(i);
      break;
    }
  }
  if (query < 0) query = 0;
  const Table& qt = data.corpus.tables[static_cast<size_t>(query)];
  std::printf("query table: '%s'\n  topic=%s  %dx%d  nested=%s\n\n",
              qt.caption().c_str(), qt.topic().c_str(), qt.rows(), qt.cols(),
              qt.HasNesting() ? "yes" : "no");

  // Embed every table once with both systems; the engine batches the
  // TabBiN encodes across the thread pool, and both embedding sets live
  // in flat [n, dim] matrices.
  EncoderEngine engine(&sys, data.corpus.tables.size());
  auto encodings = engine.EncodeBatch(data.corpus.tables);
  EmbeddingMatrix tabbin_emb, w2v_emb;
  for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
    const Table& t = data.corpus.tables[i];
    tabbin_emb.AppendRow(sys.TableComposite1(*encodings[i]));
    std::string text = t.caption();
    for (const auto& s : SerializeTuples(t)) text += " " + s;
    w2v_emb.AppendRow(w2v.Embed(text));
  }

  auto print_top5 = [&](const char* name, const EmbeddingMatrix& embs) {
    std::vector<std::pair<float, int>> scored;
    for (int i = 0; i < static_cast<int>(embs.rows()); ++i) {
      if (i == query) continue;
      scored.emplace_back(
          CosineSimilarity(embs.row(static_cast<size_t>(query)),
                           embs.row(static_cast<size_t>(i))),
          i);
    }
    std::sort(scored.rbegin(), scored.rend());
    std::printf("%s top-5 similar tables:\n", name);
    int correct = 0;
    for (int k = 0; k < 5 && k < static_cast<int>(scored.size()); ++k) {
      const Table& t =
          data.corpus.tables[static_cast<size_t>(scored[static_cast<size_t>(k)].second)];
      const bool match = t.topic() == qt.topic();
      correct += match;
      std::printf("  %.3f  [%s] %-22s %s\n",
                  scored[static_cast<size_t>(k)].first, match ? "ok " : "x  ",
                  t.topic().c_str(), t.caption().c_str());
    }
    std::printf("  topic precision@5: %d/5\n\n", correct);
  };

  print_top5("TabBiN (tblcomp1)", tabbin_emb);
  print_top5("Word2Vec", w2v_emb);
  return 0;
}
