// Domain scenario: ingesting raw CSV tables, detecting their metadata
// regions with the trained classifier, parsing typed values (units,
// ranges, Gaussians), and clustering columns — the "tables in the wild"
// pipeline from raw input to embeddings.
//
//   $ ./build/examples/csv_import_clustering
#include <cstdio>

#include "io/table_io.h"
#include "meta/metadata_classifier.h"
#include "meta/type_inference.h"
#include "table/bicoord.h"

using namespace tabbin;

int main() {
  // Three raw CSVs as they might arrive from a crawler.
  const char* kCsv1 =
      "Drug,OS (months),ORR %,Patients\n"
      "Ramucirumab,20.3 months,38%,421\n"
      "Irinotecan,14.1 months,24%,380\n"
      "Oxaliplatin,16.8 months,31%,295\n";
  const char* kCsv2 =
      "Agent,Overall Survival,Response Rate,N\n"
      "Bevacizumab,18.5 months,35%,512\n"
      "Cetuximab,13.2 months,22%,233\n";
  const char* kCsv3 =
      "City,Population,Area\n"
      "Springfield,120000,40 km\n"
      "Rivertown,85000,25 km\n";

  std::vector<Table> tables;
  int idx = 1;
  for (const char* csv : {kCsv1, kCsv2, kCsv3}) {
    auto result = TableFromCsv(csv, "imported-" + std::to_string(idx++));
    if (!result.ok()) {
      std::printf("CSV import failed: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    tables.push_back(std::move(result).value());
  }

  // Metadata detection (the paper's classifier substitute, §2.3).
  MetadataClassifier classifier;
  std::printf("=== metadata detection ===\n");
  for (auto& t : tables) {
    t.set_hmd_rows(0);  // pretend we do not know
    classifier.Annotate(&t);
    std::printf("%-12s -> hmd_rows=%d vmd_cols=%d\n", t.caption().c_str(),
                t.hmd_rows(), t.vmd_cols());
  }

  // Typed value parsing results.
  std::printf("\n=== parsed values (first table) ===\n");
  TypeInferencer typer;
  const Table& t0 = tables[0];
  for (int r = 0; r < t0.rows(); ++r) {
    for (int c = 0; c < t0.cols(); ++c) {
      const Value& v = t0.cell(r, c).value;
      if (v.is_empty()) continue;
      std::printf("  (%d,%d) %-16s kind=%-8s unit=%-8s type=%s\n", r, c,
                  v.ToString().c_str(), ValueKindName(v.kind()),
                  UnitCategoryName(v.unit()),
                  SemTypeName(typer.Infer(v)));
    }
  }

  // Structural column matching via coordinates + headers: which columns
  // of table 1 correspond to columns of table 2?
  std::printf("\n=== header-based column correspondence (t1 vs t2) ===\n");
  TypeInferencer ti;
  for (int c1 = 0; c1 < tables[0].cols(); ++c1) {
    const std::string h1 = tables[0].cell(0, c1).value.ToString();
    // Match by inferred type of the column contents.
    SemType type1 = ti.Infer(tables[0].cell(1, c1).value);
    for (int c2 = 0; c2 < tables[1].cols(); ++c2) {
      SemType type2 = ti.Infer(tables[1].cell(1, c2).value);
      const std::string h2 = tables[1].cell(0, c2).value.ToString();
      if (type1 == type2) {
        std::printf("  '%s' ~ '%s'  (both %s)\n", h1.c_str(), h2.c_str(),
                    SemTypeName(type1));
        break;
      }
    }
  }
  std::printf("\nthe unrelated cities table shares no medical columns: "
              "its value types are %s/%s/%s\n",
              SemTypeName(ti.Infer(tables[2].cell(1, 0).value)),
              SemTypeName(ti.Infer(tables[2].cell(1, 1).value)),
              SemTypeName(ti.Infer(tables[2].cell(1, 2).value)));
  return 0;
}
