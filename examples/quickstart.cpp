// Quickstart: generate a small corpus, pre-train TabBiN, and serve
// column/table similarity queries through the TabBinService facade.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's main API surface: dataset generation,
// TabBiNSystem::Create / Pretrain, then the serving facade — AddTables
// (incremental indexing), SimilarTables / SimilarColumns, free-text Ask
// (RAG grounding) — and the CC evaluation harness running over the same
// service embedding path.
#include <cstdio>
#include <memory>

#include "datagen/corpus_gen.h"
#include "service/table_service.h"
#include "tasks/clustering.h"
#include "tasks/pipelines.h"

using namespace tabbin;

int main() {
  // 1. A small CancerKG-like corpus with ground-truth labels.
  GeneratorOptions gen;
  gen.num_tables = 40;
  LabeledCorpus data = GenerateDataset("cancerkg", gen);
  std::printf("corpus: %zu tables, %.0f%% non-relational, %.0f%% nested\n",
              data.corpus.tables.size(),
              100 * data.NonRelationalFraction(),
              100 * data.NestedFraction());

  // 2. Create and pre-train a TabBiN system (vocabulary is trained from
  //    the corpus; four models: data-row, data-column, HMD, VMD).
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.pretrain_steps = 40;
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(data.corpus.tables, cfg));
  std::printf("vocabulary: %d wordpieces\n", sys->vocab().size());
  auto stats = sys->Pretrain(data.corpus.tables);
  for (int v = 0; v < 4; ++v) {
    std::printf("pretrain %-12s loss %.3f -> %.3f\n",
                TabBiNVariantName(static_cast<TabBiNVariant>(v)),
                stats[static_cast<size_t>(v)].initial_loss,
                stats[static_cast<size_t>(v)].final_loss);
  }

  // 3. Stand up the serving facade and index the corpus incrementally —
  //    new tables are encoded in parallel and inserted into the live
  //    column/table/entity LSH indexes, no rebuild.
  TabBinService service(sys);
  auto report = service.AddTables(data.corpus.tables);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nservice: %d tables, %d columns, %d entities indexed\n",
              report.value().tables_added, report.value().columns_indexed,
              report.value().entities_indexed);

  // 4. "Find tables like this one" — the paper's motivating query.
  const Table& probe = data.corpus.tables[0];
  auto similar = service.SimilarTables({probe.id(), nullptr, 3});
  if (!similar.ok()) {
    std::fprintf(stderr, "error: %s\n", similar.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntables similar to '%s' (topic %s):\n", probe.caption().c_str(),
              probe.topic().c_str());
  for (const auto& m : similar.value().matches) {
    std::printf("  %.3f  %s\n", m.score, m.caption.c_str());
  }

  // 5. Column similarity from the same facade.
  auto cols = service.SimilarColumns({probe.id(), nullptr, probe.vmd_cols(), 3});
  if (cols.ok()) {
    std::printf("\ncolumns similar to col %d of '%s':\n", probe.vmd_cols(),
                probe.caption().c_str());
    for (const auto& m : cols.value().matches) {
      std::printf("  %.3f  col %d of %s\n", m.score, m.col,
                  m.caption.c_str());
    }
  }

  // 6. Free-text grounding (the RAG front end of Table 14).
  auto ask = service.Ask({"overall survival months", 3});
  if (ask.ok()) {
    std::printf("\nask: %s\n", ask.value().answer.c_str());
  }

  // 7. Full CC evaluation with the shared harness, embedding through the
  //    very same service path the queries above used. The TableProvider
  //    seam lets the pipelines run over any table store — here a Corpus,
  //    but a service corpus or test fixture works identically.
  ClusterEvalOptions opts;
  opts.max_queries = 60;
  auto result = EvaluateClustering(
      EmbedColumns(CorpusProvider(data.corpus), data.columns,
                   [&](const Table& t, int col) {
                     return service.ColumnEmbedding(t, col);
                   }),
      opts);
  std::printf("\ncolumn clustering: MAP@20 %.3f MRR@20 %.3f over %d queries\n",
              result.map, result.mrr, result.queries);
  return 0;
}
