// Quickstart: generate a small corpus, pre-train TabBiN, and use the
// composite embeddings for column and table similarity.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's main API surface: dataset generation,
// TabBiNSystem::Create / Pretrain, EncodeAll, the CC/TC composite
// embeddings (paper Figures 4-5), and cosine-similarity clustering.
#include <cstdio>

#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "tasks/clustering.h"
#include "tasks/pipelines.h"
#include "tensor/ops.h"

using namespace tabbin;

int main() {
  // 1. A small CancerKG-like corpus with ground-truth labels.
  GeneratorOptions gen;
  gen.num_tables = 40;
  LabeledCorpus data = GenerateDataset("cancerkg", gen);
  std::printf("corpus: %zu tables, %.0f%% non-relational, %.0f%% nested\n",
              data.corpus.tables.size(),
              100 * data.NonRelationalFraction(),
              100 * data.NestedFraction());

  // 2. Create and pre-train a TabBiN system (vocabulary is trained from
  //    the corpus; four models: data-row, data-column, HMD, VMD).
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.pretrain_steps = 40;
  TabBiNSystem sys = TabBiNSystem::Create(data.corpus.tables, cfg);
  std::printf("vocabulary: %d wordpieces\n", sys.vocab().size());
  auto stats = sys.Pretrain(data.corpus.tables);
  for (int v = 0; v < 4; ++v) {
    std::printf("pretrain %-12s loss %.3f -> %.3f\n",
                TabBiNVariantName(static_cast<TabBiNVariant>(v)),
                stats[static_cast<size_t>(v)].initial_loss,
                stats[static_cast<size_t>(v)].final_loss);
  }

  // 3. Composite embeddings (paper Fig. 5): encode two tables and compare.
  const Table& a = data.corpus.tables[0];
  TableEncodings enc_a = sys.EncodeAll(a);
  std::printf("\ntable '%s' (topic %s)\n", a.caption().c_str(),
              a.topic().c_str());
  std::printf("  tblcomp1 dims: %zu (= 3 x hidden)\n",
              sys.TableComposite1(enc_a).size());
  std::printf("  colcomp dims for col %d: %zu (= 2 x hidden)\n",
              a.vmd_cols(),
              sys.ColumnComposite(enc_a, a.vmd_cols()).size());

  // 4. Find the most similar table by cosine over TC composites.
  std::vector<float> query = sys.TableComposite1(enc_a);
  int best = -1;
  float best_score = -2;
  for (size_t i = 1; i < data.corpus.tables.size(); ++i) {
    TableEncodings enc = sys.EncodeAll(data.corpus.tables[i]);
    float score = CosineSimilarity(query, sys.TableComposite1(enc));
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  std::printf("\nmost similar table: '%s' (topic %s), cosine %.3f\n",
              data.corpus.tables[static_cast<size_t>(best)].caption().c_str(),
              data.corpus.tables[static_cast<size_t>(best)].topic().c_str(),
              best_score);
  std::printf("query topic matches: %s\n",
              data.corpus.tables[static_cast<size_t>(best)].topic() ==
                      a.topic()
                  ? "yes"
                  : "no");

  // 5. Full CC evaluation with the shared harness.
  std::map<int, TableEncodings> cache;
  auto embed = [&](const Table& t, int col) {
    int idx = -1;
    for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
      if (&data.corpus.tables[i] == &t) idx = static_cast<int>(i);
    }
    auto it = cache.find(idx);
    if (it == cache.end()) it = cache.emplace(idx, sys.EncodeAll(t)).first;
    return sys.ColumnComposite(it->second, col);
  };
  ClusterEvalOptions opts;
  opts.max_queries = 60;
  auto result = EvaluateClustering(
      EmbedColumns(data.corpus, data.columns, embed), opts);
  std::printf("\ncolumn clustering: MAP@20 %.3f MRR@20 %.3f over %d queries\n",
              result.map, result.mrr, result.queries);
  return 0;
}
