// tabbin_cli — command-line front end for the library.
//
//   tabbin_cli generate <dataset> <num_tables> <out.json>
//       Generate a labeled synthetic corpus and save it as JSON.
//   tabbin_cli pretrain <corpus.json> <model_prefix>
//       Train the four TabBiN models and write checkpoints + vocabulary.
//   tabbin_cli encode <corpus.json> <model_prefix> <table_index>
//       Print the TC composite embedding of one table.
//   tabbin_cli eval <corpus.json>
//       Pretrain in-memory and report CC/TC MAP@20 / MRR@20.
//   tabbin_cli save-model <corpus.json> <model.tbsn>
//       Pretrain, encode the corpus, and write one versioned snapshot
//       (models + vocabulary + cached table encodings).
//   tabbin_cli load-model <model.tbsn> <corpus.json>
//       Warm-start from a snapshot (no pretraining, cached encodings)
//       and report TC MAP@20 / MRR@20.
//   tabbin_cli build-service [--shards=N] <corpus.json> <service.tbsn>
//       Pretrain, index the corpus in a serving core (--shards=N > 1
//       hash-partitions it across a ShardedTabBinService), and snapshot
//       the whole service (models + encodings + corpus + indexes).
//   tabbin_cli query [--shards=N] [--quantized[=r]] [--async [--qps=N]]
//       <service.tbsn> table <id> [k]
//   tabbin_cli query [--shards=N] [--quantized[=r]] [--async [--qps=N]]
//       <service.tbsn> column <id> <col> [k]
//   tabbin_cli query [--shards=N] [--quantized[=r]] [--async [--qps=N]]
//       <service.tbsn> ask <question> [k]
//       Serve similarity / grounding queries from a service snapshot —
//       no corpus file, no pretraining, no index rebuild. The snapshot
//       format (single vs sharded) is auto-detected; --shards=N
//       re-partitions onto N shards regardless of how it was saved.
//       Answers are byte-identical at any shard count. --quantized[=r]
//       turns on the int8 two-stage scan (shortlist = k*r, default r=4;
//       final scores stay float-exact). --async routes the query
//       through the admission-controlled AsyncExecutor (same answer,
//       async path); --qps=N additionally replays it open-loop at N
//       requests/s and prints p50/p95/p99 latency plus how many
//       requests the bounded lane shed.
//   tabbin_cli inspect <corpus.json> <table_index>
//       Print a table as CSV plus its coordinate trees.
//   tabbin_cli inspect <snapshot.tbsn | generation_dir>
//       Print a snapshot's format version and section table (name,
//       offset, size, alignment, checksum verdict); for a generation
//       directory, the manifest state first. Validates every section
//       checksum, exit 1 on any mismatch.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "exec/executor.h"
#include "index/hnsw_index.h"
#include "io/table_io.h"
#include "service/sharded_service.h"
#include "service/table_service.h"
#include "store/generation.h"
#include "store/paged_snapshot.h"
#include "util/snapshot.h"
#include "table/bicoord.h"
#include "tasks/clustering.h"
#include "tasks/pipelines.h"

using namespace tabbin;

namespace {

TabBiNConfig CliConfig() {
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.pretrain_steps = 60;
  return cfg;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tabbin_cli generate <dataset> <num_tables> <out.json>\n"
               "  tabbin_cli pretrain <corpus.json> <model_prefix>\n"
               "  tabbin_cli encode <corpus.json> <model_prefix> <index>\n"
               "  tabbin_cli eval <corpus.json>\n"
               "  tabbin_cli save-model <corpus.json> <model.tbsn>\n"
               "  tabbin_cli load-model <model.tbsn> <corpus.json>\n"
               "  tabbin_cli build-service [--shards=N] <corpus.json> "
               "<service.tbsn>\n"
               "  tabbin_cli query [--shards=N] [--quantized[=r]] "
               "[--index=hnsw|lsh [--ef=N]] [--async [--qps=N]] "
               "<service.tbsn> table <id> [k]\n"
               "  tabbin_cli query [...same flags] <service.tbsn> column "
               "<id> <col> [k]\n"
               "  tabbin_cli query [...same flags] <service.tbsn> ask "
               "<question> [k]\n"
               "  tabbin_cli inspect <corpus.json> <index>\n"
               "  tabbin_cli inspect <snapshot.tbsn | generation_dir>\n"
               "datasets: webtables covidkg cancerkg saus cius\n"
               "--shards=N serves through N hash-partitioned shards\n"
               "(scatter-gather; answers identical at any shard count)\n"
               "--quantized[=r] scores through the int8 two-stage scan\n"
               "(k*r shortlist, float-exact rerank; default r=4)\n"
               "--index=hnsw walks the graph-ANN candidate index\n"
               "(sub-linear; --ef=N widens the beam for recall);\n"
               "--index=lsh forces the reference bucket probe\n"
               "--async routes queries through the AsyncExecutor;\n"
               "--qps=N replays the query open-loop at N requests/s and\n"
               "prints latency percentiles + shed count (implies --async)\n");
  return 2;
}

int CmdGenerate(const std::string& dataset, int n, const std::string& out) {
  GeneratorOptions opts;
  opts.num_tables = n;
  LabeledCorpus data = GenerateDataset(dataset, opts);
  Status st = SaveCorpus(data.corpus, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu tables to %s (%.0f%% non-relational, %.0f%% nested)\n",
              data.corpus.tables.size(), out.c_str(),
              100 * data.NonRelationalFraction(),
              100 * data.NestedFraction());
  return 0;
}

Result<Corpus> LoadOrDie(const std::string& path) { return LoadCorpus(path); }

int CmdPretrain(const std::string& corpus_path, const std::string& prefix) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  TabBiNSystem sys = TabBiNSystem::Create(corpus.value().tables, CliConfig());
  auto stats = sys.Pretrain(corpus.value().tables);
  for (int v = 0; v < 4; ++v) {
    const char* name = TabBiNVariantName(static_cast<TabBiNVariant>(v));
    std::printf("%-12s loss %.3f -> %.3f\n", name,
                stats[static_cast<size_t>(v)].initial_loss,
                stats[static_cast<size_t>(v)].final_loss);
    Status st = sys.model(static_cast<TabBiNVariant>(v))
                    ->Save(prefix + "." + name + ".bin");
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  Status st = sys.vocab().Save(prefix + ".vocab.bin");
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoints written with prefix %s\n", prefix.c_str());
  return 0;
}

int CmdEncode(const std::string& corpus_path, const std::string& prefix,
              int index) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  if (index < 0 || index >= static_cast<int>(corpus.value().tables.size())) {
    std::fprintf(stderr, "error: index out of range\n");
    return 1;
  }
  auto vocab = Vocab::Load(prefix + ".vocab.bin");
  if (!vocab.ok()) {
    std::fprintf(stderr, "error: %s\n", vocab.status().ToString().c_str());
    return 1;
  }
  TabBiNSystem sys(CliConfig(), std::move(vocab).value());
  for (int v = 0; v < 4; ++v) {
    const char* name = TabBiNVariantName(static_cast<TabBiNVariant>(v));
    Status st = sys.model(static_cast<TabBiNVariant>(v))
                    ->Load(prefix + "." + name + ".bin");
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const Table& t = corpus.value().tables[static_cast<size_t>(index)];
  TableEncodings enc = sys.EncodeAll(t);
  std::vector<float> emb = sys.TableComposite1(enc);
  std::printf("# table %d: %s\n", index, t.caption().c_str());
  for (size_t i = 0; i < emb.size(); ++i) {
    std::printf("%s%.6f", i ? " " : "", emb[i]);
  }
  std::printf("\n");
  return 0;
}

int CmdEval(const std::string& corpus_path) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  // Topic labels come from the tables themselves; columns use header text
  // as a weak label when no ground truth is available.
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(corpus.value().tables, CliConfig()));
  sys->Pretrain(corpus.value().tables);
  // The service owns the batched, cached encoding path; embeddings come
  // out of the same accessors the query endpoints use.
  ServiceOptions opts_svc;
  opts_svc.encoder_cache_capacity = corpus.value().tables.size();
  TabBinService service(sys, opts_svc);
  service.engine().EncodeBatch(corpus.value().tables);
  LabeledEmbeddingSet tables;
  for (const Table& t : corpus.value().tables) {
    if (!t.topic().empty()) tables.Add(service.TableEmbedding(t), t.topic());
  }
  ClusterEvalOptions opts;
  auto tc = EvaluateClustering(tables, opts);
  std::printf("TC (topic labels): MAP@20 %.3f MRR@20 %.3f (%d queries)\n",
              tc.map, tc.mrr, tc.queries);
  return 0;
}

int CmdSaveModel(const std::string& corpus_path, const std::string& out) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  TabBiNSystem sys = TabBiNSystem::Create(corpus.value().tables, CliConfig());
  auto stats = sys.Pretrain(corpus.value().tables);
  for (int v = 0; v < 4; ++v) {
    std::printf("%-12s loss %.3f -> %.3f\n",
                TabBiNVariantName(static_cast<TabBiNVariant>(v)),
                stats[static_cast<size_t>(v)].initial_loss,
                stats[static_cast<size_t>(v)].final_loss);
  }
  // Encode every table now so the snapshot warm-starts future runs all
  // the way through (no forward passes on load).
  EncoderEngine engine(&sys, corpus.value().tables.size());
  engine.EncodeBatch(corpus.value().tables);
  SnapshotWriter snapshot;
  sys.AppendTo(&snapshot);
  engine.AppendCacheTo(&snapshot);
  Status st = snapshot.ToFile(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("snapshot written to %s (%zu cached encodings)\n", out.c_str(),
              engine.size());
  return 0;
}

int CmdLoadModel(const std::string& snapshot_path,
                 const std::string& corpus_path) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto snapshot = SnapshotReader::FromFile(snapshot_path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  auto sys = TabBiNSystem::FromSnapshot(snapshot.value());
  if (!sys.ok()) {
    std::fprintf(stderr, "error: %s\n", sys.status().ToString().c_str());
    return 1;
  }
  ServiceOptions opts_svc;
  opts_svc.encoder_cache_capacity = corpus.value().tables.size();
  TabBinService service(
      std::make_shared<TabBiNSystem>(std::move(sys).value()), opts_svc);
  auto warmed = service.engine().WarmStart(snapshot.value());
  if (!warmed.ok()) {
    std::fprintf(stderr, "error: %s\n", warmed.status().ToString().c_str());
    return 1;
  }
  std::printf("warm start: %zu cached encodings\n", warmed.value());

  LabeledEmbeddingSet tables;
  for (const Table& t : corpus.value().tables) {
    if (!t.topic().empty()) tables.Add(service.TableEmbedding(t), t.topic());
  }
  ClusterEvalOptions opts;
  auto tc = EvaluateClustering(tables, opts);
  std::printf(
      "TC (topic labels): MAP@20 %.3f MRR@20 %.3f (%d queries; cache "
      "%zu hits / %zu misses)\n",
      tc.map, tc.mrr, tc.queries, service.engine().hits(),
      service.engine().misses());
  return 0;
}

int CmdBuildService(const std::string& corpus_path, const std::string& out,
                    int shards, int index_kind, int ef) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(corpus.value().tables, CliConfig()));
  auto stats = sys->Pretrain(corpus.value().tables);
  for (int v = 0; v < 4; ++v) {
    std::printf("%-12s loss %.3f -> %.3f\n",
                TabBiNVariantName(static_cast<TabBiNVariant>(v)),
                stats[static_cast<size_t>(v)].initial_loss,
                stats[static_cast<size_t>(v)].final_loss);
  }
  ServiceOptions opts;
  opts.encoder_cache_capacity = corpus.value().tables.size();
  std::unique_ptr<TabBinServing> service = MakeServing(sys, shards, opts);
  auto report = service->AddTables(corpus.value().tables);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (index_kind >= 0) {
    // Graph snapshots carry their adjacency as store sections, so a
    // service built with --index=hnsw serves the graph straight off
    // the mapping on load (no rebuild).
    service->SetIndexKind(static_cast<IndexKind>(index_kind), ef);
    std::printf("candidate index: %s\n",
                index_kind == kIndexHnsw ? "hnsw" : "lsh");
  }
  Status st = service->Save(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "service snapshot written to %s (%d tables, %d columns, %d entities, "
      "%d shard%s)\n",
      out.c_str(), report.value().tables_added,
      report.value().columns_indexed, report.value().entities_indexed,
      std::max(1, shards), shards > 1 ? "s" : "");
  return 0;
}

// Open-loop replay of one query through the executor: submit at fixed
// scheduled arrival times, stamp completions as they happen (FIFO — the
// executor resolves read promises in submission order), and charge any
// queueing delay against the request's scheduled arrival. Works for any
// submit() returning a std::future over a Result with ok().
template <typename SubmitFn>
void RunAsyncLoad(const SubmitFn& submit, int qps, int n) {
  using Clock = std::chrono::steady_clock;
  using FutureT = decltype(submit());
  std::vector<FutureT> futures(static_cast<size_t>(n));
  std::vector<Clock::time_point> sched(static_cast<size_t>(n));
  std::vector<Clock::time_point> done(static_cast<size_t>(n));
  std::atomic<int> produced{0};
  std::thread collector([&] {
    for (int i = 0; i < n; ++i) {
      while (produced.load(std::memory_order_acquire) <= i) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      const size_t idx = static_cast<size_t>(i);
      futures[idx].wait();
      done[idx] = Clock::now();
    }
  });
  const auto start = Clock::now();
  const std::chrono::nanoseconds gap(
      static_cast<long long>(1e9 / static_cast<double>(qps)));
  for (int i = 0; i < n; ++i) {
    const auto arrival = start + gap * i;
    std::this_thread::sleep_until(arrival);
    const size_t idx = static_cast<size_t>(i);
    sched[idx] = arrival;
    futures[idx] = submit();
    produced.store(i + 1, std::memory_order_release);
  }
  collector.join();
  std::vector<double> lat_ms;
  int shed = 0;
  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    if (!futures[idx].get().ok()) {
      ++shed;
      continue;
    }
    lat_ms.push_back(
        std::chrono::duration<double, std::milli>(done[idx] - sched[idx])
            .count());
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  const auto pct = [&lat_ms](double p) {
    if (lat_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(lat_ms.size() - 1) + 0.5);
    return lat_ms[std::min(idx, lat_ms.size() - 1)];
  };
  std::printf(
      "open-loop: %d requests at %d qps: p50 %.2f ms  p95 %.2f ms  "
      "p99 %.2f ms  (%zu ok, %d shed)\n",
      n, qps, pct(0.50), pct(0.95), pct(0.99), lat_ms.size(), shed);
}

int CmdQuery(const std::string& snapshot_path, const std::string& kind,
             const std::vector<std::string>& args, int shards,
             int quantized_r, int index_kind, int ef, bool use_async,
             int qps) {
  auto service = LoadServing(snapshot_path, shards);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().ToString().c_str());
    return 1;
  }
  TabBinServing& svc = *service.value();
  if (quantized_r > 0) {
    // The scan knob is runtime state (never part of the snapshot), so it
    // is applied after loading.
    svc.SetQuantizedScan(true, quantized_r);
    std::printf("quantized scan: on (shortlist = k * %d)\n", quantized_r);
  }
  if (index_kind >= 0) {
    // --index=hnsw builds the graphs when the snapshot carries none
    // (v1 / lsh-saved stores); --index=lsh drops a persisted graph and
    // forces the reference bucket probe.
    svc.SetIndexKind(static_cast<IndexKind>(index_kind), ef);
    if (index_kind == kIndexHnsw && ef > 0) {
      std::printf("candidate index: hnsw (ef_search %d)\n", ef);
    } else if (index_kind == kIndexHnsw) {
      std::printf("candidate index: hnsw (default ef_search)\n");
    } else {
      std::printf("candidate index: lsh\n");
    }
  }
  std::unique_ptr<AsyncExecutor> exec;
  if (use_async) {
    exec = std::make_unique<AsyncExecutor>(&svc);
    std::printf("async executor: on (read lane depth %zu)\n",
                exec->read_queue_capacity());
  }
  const int load_requests = 200;
  std::printf("service: %zu live tables, %zu columns, %zu entities\n",
              svc.NumLiveTables(), svc.NumIndexedColumns(),
              svc.NumIndexedEntities());
  if (kind == "table" && !args.empty()) {
    const int k = args.size() > 1 ? std::atoi(args[1].c_str()) : 5;
    if (exec != nullptr && qps > 0) {
      RunAsyncLoad(
          [&] { return exec->SubmitSimilarTables({args[0], nullptr, k}); },
          qps, load_requests);
    }
    auto r = exec != nullptr
                 ? exec->SubmitSimilarTables({args[0], nullptr, k}).get()
                 : svc.SimilarTables({args[0], nullptr, k});
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("tables similar to %s (%d candidates):\n", args[0].c_str(),
                r.value().candidates);
    for (const auto& m : r.value().matches) {
      std::printf("  %.3f  %-16s %s\n", m.score, m.table_id.c_str(),
                  m.caption.c_str());
    }
    return 0;
  }
  if (kind == "column" && args.size() >= 2) {
    const int col = std::atoi(args[1].c_str());
    const int k = args.size() > 2 ? std::atoi(args[2].c_str()) : 5;
    if (exec != nullptr && qps > 0) {
      RunAsyncLoad(
          [&] {
            return exec->SubmitSimilarColumns({args[0], nullptr, col, k});
          },
          qps, load_requests);
    }
    auto r =
        exec != nullptr
            ? exec->SubmitSimilarColumns({args[0], nullptr, col, k}).get()
            : svc.SimilarColumns({args[0], nullptr, col, k});
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("columns similar to %s:%d (%d candidates):\n",
                args[0].c_str(), col, r.value().candidates);
    for (const auto& m : r.value().matches) {
      std::printf("  %.3f  %-16s col %d  %s\n", m.score, m.table_id.c_str(),
                  m.col, m.caption.c_str());
    }
    return 0;
  }
  if (kind == "ask" && !args.empty()) {
    const int k = args.size() > 1 ? std::atoi(args[1].c_str()) : 5;
    if (exec != nullptr && qps > 0) {
      RunAsyncLoad([&] { return exec->SubmitAsk({args[0], k}); }, qps,
                   load_requests);
    }
    auto r = exec != nullptr ? exec->SubmitAsk({args[0], k}).get()
                             : svc.Ask({args[0], k});
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", r.value().answer.c_str());
    for (const auto& m : r.value().tables) {
      std::printf("  %.3f  %-16s %s\n", m.score, m.table_id.c_str(),
                  m.caption.c_str());
    }
    return 0;
  }
  return Usage();
}

int CmdInspectSnapshot(const std::string& path) {
  std::string file = path;
  if (IsDirectory(path)) {
    auto manifest = ReadGenerationManifest(path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   manifest.status().ToString().c_str());
      return 1;
    }
    std::printf("generation directory: %s\n  current generation: %llu\n"
                "  current file:       %s\n",
                path.c_str(),
                static_cast<unsigned long long>(manifest.value().generation),
                manifest.value().file.c_str());
    auto resolved = ResolveGeneration(path);
    if (!resolved.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   resolved.status().ToString().c_str());
      return 1;
    }
    file = resolved.value();
  }
  auto version = PeekSnapshotVersion(file);
  if (!version.ok()) {
    std::fprintf(stderr, "error: %s\n", version.status().ToString().c_str());
    return 1;
  }
  if (version.value() < 2) {
    // v1 stream: opening validates the whole-file checksum, so a
    // successful load already vouches for every byte.
    auto snapshot = SnapshotReader::FromFile(file);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: TBSN v1 stream (whole-file checksum ok)\n",
                file.c_str());
    std::printf("  %-28s %12s\n", "section", "bytes");
    for (const std::string& name : snapshot.value().SectionNames()) {
      auto r = snapshot.value().Section(name);
      std::printf("  %-28s %12zu\n", name.c_str(),
                  r.ok() ? r.value().remaining() : size_t{0});
    }
    return 0;
  }
  auto reader = PagedSnapshotReader::Open(file);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
    return 1;
  }
  const PagedSnapshotReader& r = reader.value();
  std::printf("%s: TBSN v2 paged store, %zu bytes, %s\n", file.c_str(),
              r.file_size(), r.is_mapped() ? "mmap" : "heap fallback");
  std::printf("  %-16s %12s %12s %6s  %s\n", "section", "offset", "bytes",
              "align", "checksum");
  bool all_ok = true;
  for (const PagedSnapshotReader::SectionInfo& info : r.sections()) {
    // Force validation so inspect reports an actual verdict for every
    // section, including the lazily-served bulk blocks.
    all_ok = r.ValidateSection(info.name).ok() && all_ok;
    std::printf("  %-16s %12llu %12llu %6llu  %s\n", info.name.c_str(),
                static_cast<unsigned long long>(info.offset),
                static_cast<unsigned long long>(info.length),
                static_cast<unsigned long long>(info.align),
                r.ChecksumState(info.name));
  }
  // Graph-index summary: every persisted HNSW graph is a
  // "<p>hnsw.<task>meta" / "<p>hnsw.<task>0" section pair; restore each
  // (validating every neighbor id on the way) and print its geometry.
  bool printed_hnsw_header = false;
  for (const PagedSnapshotReader::SectionInfo& info : r.sections()) {
    const std::string& name = info.name;
    if (name.find("hnsw.") == std::string::npos || name.size() < 4 ||
        name.compare(name.size() - 4, 4, "meta") != 0) {
      continue;
    }
    const std::string l0_name = name.substr(0, name.size() - 4) + "0";
    auto meta = r.Section(name);
    auto l0 = r.SectionSpan(l0_name);
    if (!meta.ok() || !l0.ok()) {
      std::fprintf(stderr, "error: graph %s: %s\n", name.c_str(),
                   (meta.ok() ? l0.status() : meta.status())
                       .ToString()
                       .c_str());
      all_ok = false;
      continue;
    }
    auto graph = HnswIndex::Restore(&meta.value(), l0.value().data,
                                    l0.value().size, nullptr);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: graph %s: %s\n", name.c_str(),
                   graph.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    if (!printed_hnsw_header) {
      std::printf("hnsw graphs:\n");
      std::printf("  %-24s %8s %6s %4s %8s %10s %12s\n", "graph", "nodes",
                  "dead", "M", "levels", "edges", "level0 bytes");
      printed_hnsw_header = true;
    }
    const HnswIndex& g = graph.value();
    std::printf("  %-24s %8zu %6zu %4d %8d %10zu %12zu\n",
                name.substr(0, name.size() - 4).c_str(), g.size(),
                g.dead_count(), g.options().m, g.max_level() + 1,
                g.edge_count(), g.level0_bytes());
  }
  std::printf("%s\n", all_ok ? "all section checksums ok"
                             : "CHECKSUM FAILURES (see table)");
  return all_ok ? 0 : 1;
}

int CmdInspect(const std::string& corpus_path, int index) {
  auto corpus = LoadOrDie(corpus_path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  if (index < 0 || index >= static_cast<int>(corpus.value().tables.size())) {
    std::fprintf(stderr, "error: index out of range\n");
    return 1;
  }
  const Table& t = corpus.value().tables[static_cast<size_t>(index)];
  std::printf("caption: %s\ntopic: %s\nhmd_rows=%d vmd_cols=%d\n\n%s\n",
              t.caption().c_str(), t.topic().c_str(), t.hmd_rows(),
              t.vmd_cols(), TableToCsv(t).c_str());
  auto htree =
      CoordinateTree::Build(t, CoordinateTree::Dimension::kHorizontal);
  auto vtree = CoordinateTree::Build(t, CoordinateTree::Dimension::kVertical);
  std::printf("horizontal tree:\n%s\nvertical tree:\n%s",
              htree.ToString().c_str(), vtree.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --shards=N, --quantized[=r], --async, and --qps=N may appear
  // anywhere; strip them before positional parsing.
  int shards = 0;       // 0 = default (single shard / saved layout)
  int quantized_r = 0;  // 0 = exact scoring; > 0 = shortlist multiplier
  int index_kind = -1;  // -1 = as loaded; kIndexLsh / kIndexHnsw forced
  int ef = 0;           // 0 = keep the service's ef_search default
  bool use_async = false;
  int qps = 0;  // > 0 = open-loop replay rate (implies --async)
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
      continue;
    }
    if (arg == "--quantized") {
      quantized_r = 4;
      continue;
    }
    if (arg.rfind("--quantized=", 0) == 0) {
      quantized_r = std::max(1, std::atoi(arg.c_str() + 12));
      continue;
    }
    if (arg == "--index=hnsw") {
      index_kind = kIndexHnsw;
      continue;
    }
    if (arg == "--index=lsh") {
      index_kind = kIndexLsh;
      continue;
    }
    if (arg.rfind("--ef=", 0) == 0) {
      ef = std::max(1, std::atoi(arg.c_str() + 5));
      continue;
    }
    if (arg == "--async") {
      use_async = true;
      continue;
    }
    if (arg.rfind("--qps=", 0) == 0) {
      qps = std::max(1, std::atoi(arg.c_str() + 6));
      use_async = true;
      continue;
    }
    args.push_back(arg);
  }
  const size_t n = args.size();
  if (n < 1) return Usage();
  const std::string& cmd = args[0];
  if (cmd == "generate" && n == 4) {
    return CmdGenerate(args[1], std::atoi(args[2].c_str()), args[3]);
  }
  if (cmd == "pretrain" && n == 3) return CmdPretrain(args[1], args[2]);
  if (cmd == "encode" && n == 4) {
    return CmdEncode(args[1], args[2], std::atoi(args[3].c_str()));
  }
  if (cmd == "eval" && n == 2) return CmdEval(args[1]);
  if (cmd == "save-model" && n == 3) return CmdSaveModel(args[1], args[2]);
  if (cmd == "load-model" && n == 3) return CmdLoadModel(args[1], args[2]);
  if (cmd == "build-service" && n == 3) {
    return CmdBuildService(args[1], args[2], shards, index_kind, ef);
  }
  if (cmd == "query" && n >= 4) {
    std::vector<std::string> rest(args.begin() + 3, args.end());
    return CmdQuery(args[1], args[2], rest, shards, quantized_r, index_kind,
                    ef, use_async, qps);
  }
  if (cmd == "inspect" && n == 3) {
    return CmdInspect(args[1], std::atoi(args[2].c_str()));
  }
  if (cmd == "inspect" && n == 2) return CmdInspectSnapshot(args[1]);
  return Usage();
}
