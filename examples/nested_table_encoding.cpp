// Reproduces the paper's Figure 1 (bi-dimensional coordinates on a
// non-1NF oncology table with nesting) and Figure 3 (the encoded
// representation in the embedding layer) on a hand-built table.
//
//   $ ./build/examples/nested_table_encoding
#include <cstdio>

#include "core/input_builder.h"
#include "meta/type_inference.h"
#include "table/bicoord.h"
#include "table/visibility.h"
#include "text/wordpiece.h"

using namespace tabbin;

namespace {

// The Figure-1-style table: 2 HMD rows (Efficacy End Point -> OS / PFS /
// Other Efficacy), 2 VMD columns (Patient Cohort -> Previously Untreated /
// Failing under Fluoropyrimidine and Irinotecan), one nested table.
Table MakeFigure1Table() {
  Table t(8, 8, 2, 2);
  t.set_caption("Treatment efficacy for metastatic colorectal cancer");
  for (int c = 2; c < 8; ++c) {
    t.SetValue(0, c, Value::String("Efficacy End Point"));
  }
  for (int c = 2; c < 4; ++c) t.SetValue(1, c, Value::String("OS"));
  for (int c = 4; c < 6; ++c) t.SetValue(1, c, Value::String("PFS"));
  for (int c = 6; c < 8; ++c) {
    t.SetValue(1, c, Value::String("Other Efficacy"));
  }
  for (int r = 2; r < 8; ++r) {
    t.SetValue(r, 0, Value::String("Patient Cohort"));
  }
  for (int r = 2; r < 5; ++r) {
    t.SetValue(r, 1, Value::String("Previously Untreated"));
  }
  for (int r = 5; r < 8; ++r) {
    t.SetValue(r, 1,
               Value::String("Failing under Fluoropyrimidine and Irinotecan"));
  }
  for (int r = 2; r < 8; ++r) {
    for (int c = 2; c < 8; ++c) {
      t.SetValue(r, c,
                 Value::Number(10.0 * r + c, UnitCategory::kTime, "month"));
    }
  }
  t.SetValue(3, 4, Value::Range(20, 30, UnitCategory::kTime, "month"));
  t.SetValue(4, 5, Value::Gaussian(5.2, 1.1, UnitCategory::kStats, "%"));
  Table nested(2, 2, 1, 0);
  nested.SetValue(0, 0, Value::String("OS"));
  nested.SetValue(0, 1, Value::String("HR"));
  nested.SetValue(1, 0, Value::Number(20.3, UnitCategory::kTime, "month"));
  nested.SetValue(1, 1, Value::Number(0.84));
  t.SetNested(2, 7, std::move(nested));
  return t;
}

}  // namespace

int main() {
  Table t = MakeFigure1Table();

  // --- Figure 1: the two coordinate trees -----------------------------
  std::printf("=== Figure 1: bi-dimensional coordinate trees ===\n\n");
  auto htree = CoordinateTree::Build(t, CoordinateTree::Dimension::kHorizontal);
  auto vtree = CoordinateTree::Build(t, CoordinateTree::Dimension::kVertical);
  std::printf("horizontal tree:\n%s\n", htree.ToString().c_str());
  std::printf("vertical tree:\n%s\n", vtree.ToString().c_str());

  CoordinateMap coords(t);
  std::printf("coordinates of the nested-table host cell (row 2, col 7):\n");
  const CellCoordinate& host = coords.at(2, 7);
  std::printf("  %s\n", host.ToString().c_str());
  std::printf("  horizontal path: ");
  for (const auto& l : host.h_labels) std::printf("%s -> ", l.c_str());
  std::printf("(cell)\n  vertical path:   ");
  for (const auto& l : host.v_labels) std::printf("%s -> ", l.c_str());
  std::printf("(cell)\n\n");

  // --- Figure 3: encoded representation -------------------------------
  std::printf("=== Figure 3: encoded representation (data-row model) ===\n\n");
  std::vector<std::string> texts;
  for (int r = 0; r < t.rows(); ++r) {
    for (int c = 0; c < t.cols(); ++c) {
      if (!t.cell(r, c).value.is_empty()) {
        texts.push_back(t.cell(r, c).value.ToString());
      }
    }
  }
  Vocab vocab = TrainWordPieceVocab(texts, 2000, 1);
  TypeInferencer typer;
  TabBiNConfig cfg;
  cfg.max_seq_len = 256;
  EncodedSequence seq =
      BuildSequence(t, TabBiNVariant::kDataRow, vocab, typer, cfg);

  std::printf("%-12s %-6s %-6s %-10s %-12s %-10s %-10s\n", "token", "inpos",
              "num", "outpos", "nested", "type", "unit/nest");
  for (int i = 0; i < seq.size() && i < 24; ++i) {
    const TokenFeatures& tok = seq.tokens[static_cast<size_t>(i)];
    char outpos[32], nested[16], numfeat[16];
    std::snprintf(outpos, sizeof(outpos), "(<%d,%d>;<%d,%d>)", tok.hr, tok.hc,
                  tok.vc, tok.vr);
    std::snprintf(nested, sizeof(nested), "(%d,%d)", tok.nr, tok.nc);
    if (tok.magnitude >= 0) {
      std::snprintf(numfeat, sizeof(numfeat), "%d%d%d%d", tok.magnitude,
                    tok.precision, tok.first_digit, tok.last_digit);
    } else {
      std::snprintf(numfeat, sizeof(numfeat), "-");
    }
    char bits[9];
    for (int b = 0; b < 8; ++b) {
      bits[b] = (tok.fmt_bits & (1u << b)) ? '1' : '0';
    }
    bits[8] = 0;
    std::printf("%-12s %-6d %-6s %-10s %-12s %-10s %-10s\n",
                vocab.GetToken(tok.token_id).c_str(), tok.cell_pos, numfeat,
                outpos, nested,
                SemTypeName(static_cast<SemType>(tok.type_id)), bits);
  }
  std::printf("... (%d tokens total)\n\n", seq.size());

  // --- Visibility matrix ----------------------------------------------
  VisibilityMatrix vis = BuildSequenceVisibility(seq);
  std::printf("visibility matrix: %dx%d, density %.3f "
              "(1.0 would be standard full attention)\n",
              vis.size(), vis.size(), vis.Density());
  return 0;
}
