// Regenerates paper Table 14: CC and TC MAP/MRR for LLMs with and
// without RAG (simulated; DESIGN.md S6) against the real TabBiN model,
// on CancerKG and CovidKG. Expected shape: RAG lifts every LLM;
// RAG+GPT-4 reaches ~perfect MRR (first answer right) but TabBiN keeps
// the best MAP (better full top-20 ranking) — the paper's headline
// "GPT-4+RAG wins MRR by 0.1, TabBiN wins MAP by up to 0.42".
#include "bench/common.h"
#include "llm/rag_simulator.h"

using namespace tabbin;
using namespace tabbin::bench;

namespace {

std::string SerializeColumn(const Table& t, int col) {
  std::string text;
  for (int r = 0; r < t.rows(); ++r) {
    if (!t.cell(r, col).is_empty()) {
      text += t.cell(r, col).value.ToString() + " ";
    }
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  auto eval_opts = BenchEvalOptions();
  const std::vector<std::string> llms = {"gpt2", "llama2", "llama2+rag",
                                         "gpt3.5+rag", "gpt4+rag"};

  PrintHeader("Table 14", "CC and TC with LLMs (+RAG, simulated) vs TabBiN");
  for (const std::string& dataset : {std::string("cancerkg"),
                                     std::string("covidkg")}) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    // --- CC ---
    std::vector<RagDocument> col_docs;
    for (const auto& q : data.columns) {
      const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
      col_docs.push_back({SerializeColumn(t, q.col), q.label});
    }
    for (const auto& name : llms) {
      RagLlmSimulator sim(ProfileFor(name), 97);
      sim.Index(col_docs);
      auto r = sim.Evaluate(eval_opts.k, eval_opts.max_queries);
      PrintRow(name + " (sim)", dataset + "/CC", r.map, r.mrr);
    }
    auto cc_items =
        EmbedColumns(data.corpus, data.columns, env.TabbinColumnComposite());
    {
      // RAG grounded in TabBiN embeddings: BM25 ∪ dense cosine candidates.
      RagLlmSimulator sim(ProfileFor("gpt4+rag"), 97);
      Status st = sim.Index(col_docs, cc_items.matrix());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      auto r = sim.Evaluate(eval_opts.k, eval_opts.max_queries);
      PrintRow("gpt4+rag+dense (sim)", dataset + "/CC", r.map, r.mrr);
    }
    {
      auto r = EvaluateClustering(cc_items, eval_opts);
      PrintRow("TabBiN", dataset + "/CC", r.map, r.mrr, r.queries);
    }

    // --- TC ---
    // Same serialization the service's Ask grounding index uses.
    std::vector<RagDocument> tbl_docs;
    for (const auto& q : data.tables) {
      const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
      tbl_docs.push_back({ServiceDocumentText(t), q.label});
    }
    for (const auto& name : llms) {
      RagLlmSimulator sim(ProfileFor(name), 98);
      sim.Index(tbl_docs);
      auto r = sim.Evaluate(eval_opts.k, eval_opts.max_queries);
      PrintRow(name + " (sim)", dataset + "/TC", r.map, r.mrr);
    }
    auto tc_items =
        EmbedTables(data.corpus, data.tables, env.TabbinTableComposite1());
    {
      RagLlmSimulator sim(ProfileFor("gpt4+rag"), 98);
      Status st = sim.Index(tbl_docs, tc_items.matrix());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      auto r = sim.Evaluate(eval_opts.k, eval_opts.max_queries);
      PrintRow("gpt4+rag+dense (sim)", dataset + "/TC", r.map, r.mrr);
    }
    {
      auto r = EvaluateClustering(tc_items, eval_opts);
      PrintRow("TabBiN", dataset + "/TC", r.map, r.mrr, r.queries);
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "RAG improves every LLM; GPT-4+RAG ~perfect MRR but TabBiN best MAP "
      "(paper: TabBiN +0.42 MAP over GPT-4+RAG; GPT-4+RAG +0.1 MRR).");
  return 0;
}
