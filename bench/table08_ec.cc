// Regenerates paper Table 8: Entity Clustering MAP/MRR on all five
// datasets — TabBiN (column model) vs TUTA vs BioBERT-sub vs Word2Vec.
// Expected shape: TabBiN attains the highest MAP on every dataset, with
// small margins over TUTA (paper: +0.06 on CancerKG and SAUS).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  models.tuta = true;
  models.bertlike = true;
  models.word2vec = true;
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 8", "EC MAP/MRR over the five datasets");
  for (const std::string& dataset : DatasetNames()) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    struct Entry {
      const char* name;
      CellEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN", env.TabbinEntity()},
        {"TUTA-like", env.TutaEntity()},
        {"BioBERT-sub", env.BertEntity()},
        {"Word2Vec", env.W2vEntity()},
    };
    for (auto& e : entries) {
      auto r = EvaluateClustering(
          EmbedEntities(data.corpus, data.entities, e.embed), eval_opts);
      PrintRow(e.name, dataset, r.map, r.mrr, r.queries);
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "TabBiN highest MAP on all datasets; small margins over TUTA "
      "(paper: +0.06 MAP on CancerKG and SAUS).");
  return 0;
}
