#include "bench/common.h"

#include <algorithm>

#include "util/logging.h"

namespace tabbin {
namespace bench {

TabBiNConfig BenchTabBiNConfig() {
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  cfg.pretrain_steps = 80;
  cfg.batch_size = 4;
  cfg.learning_rate = 1.5e-3f;
  return cfg;
}

BertLikeConfig BenchBertConfig() {
  BertLikeConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  cfg.pretrain_steps = 80;
  cfg.batch_size = 4;
  cfg.learning_rate = 1.5e-3f;
  return cfg;
}

ClusterEvalOptions BenchEvalOptions() {
  ClusterEvalOptions opts;
  opts.k = 20;
  opts.max_queries = 120;
  opts.use_lsh = true;
  return opts;
}

BenchEnv::BenchEnv(const std::string& dataset, const ModelSet& models,
                   int num_tables, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tables = num_tables;
  gen.seed = seed;
  data_ = GenerateDataset(dataset, gen);

  TabBiNConfig cfg = BenchTabBiNConfig();
  tabbin_ = std::make_unique<TabBiNSystem>(
      TabBiNSystem::Create(data_.corpus.tables, cfg));
  // Register the dataset's catalogs so type inference covers them (the
  // paper's "custom list of named-entities" step).
  for (const auto& cat : data_.catalogs) {
    SemType type = SemType::kText;
    if (cat.name == "drug") type = SemType::kDrug;
    else if (cat.name == "vaccine") type = SemType::kVaccine;
    else if (cat.name == "disease") type = SemType::kDisease;
    else if (cat.name == "symptom") type = SemType::kSymptom;
    else if (cat.name == "treatment") type = SemType::kTreatment;
    else if (cat.name == "organization") type = SemType::kOrganization;
    else if (cat.name == "city" || cat.name == "state" ||
             cat.name == "region") {
      type = SemType::kPlace;
    } else {
      continue;
    }
    for (const auto& e : cat.entities) tabbin_->typer()->AddTerm(e, type);
  }
  if (models.tabbin) {
    TABBIN_LOG(INFO) << dataset << ": pre-training TabBiN (4 models)";
    tabbin_->Pretrain(data_.corpus.tables);
  }
  // Capacity covers the whole corpus so no bench eval ever thrashes.
  engine_ = std::make_unique<EncoderEngine>(
      tabbin_.get(), std::max<size_t>(256, data_.corpus.tables.size()));
  if (models.tabbin) PrewarmEncodings();
  if (models.tuta) {
    TABBIN_LOG(INFO) << dataset << ": pre-training TUTA-like";
    tuta_ = std::make_unique<TutaModel>(cfg, &tabbin_->vocab(),
                                        tabbin_->typer());
    tuta_->Pretrain(data_.corpus.tables);
  }
  if (models.bertlike) {
    TABBIN_LOG(INFO) << dataset << ": pre-training BertLike";
    bert_ = std::make_unique<BertLikeModel>(BenchBertConfig(),
                                            &tabbin_->vocab());
    std::vector<std::string> texts;
    for (const auto& t : data_.corpus.tables) {
      texts.push_back(t.caption());
      for (auto& tuple : SerializeTuples(t)) texts.push_back(std::move(tuple));
    }
    bert_->Pretrain(texts);
  }
  if (models.word2vec) {
    TABBIN_LOG(INFO) << dataset << ": training Word2Vec";
    Word2VecConfig wcfg;
    wcfg.dim = 64;  // scaled with the transformer hidden sizes
    w2v_ = std::make_unique<Word2Vec>(wcfg);
    std::vector<std::string> sentences;
    for (const auto& t : data_.corpus.tables) {
      for (auto& tuple : SerializeTuples(t)) {
        sentences.push_back(std::move(tuple));
      }
    }
    w2v_->Train(sentences);
  }
}

std::shared_ptr<const TableEncodings> BenchEnv::Encodings(const Table& table) {
  const int index = IndexOf(table);
  if (index >= 0 && index < static_cast<int>(prewarmed_.size())) {
    return prewarmed_[static_cast<size_t>(index)];
  }
  // Not a corpus table (or prewarm skipped): the engine's content
  // fingerprint still deduplicates repeated encodes.
  return engine_->Encode(table);
}

void BenchEnv::PrewarmEncodings() {
  prewarmed_ = engine_->EncodeBatch(data_.corpus.tables);
}

int BenchEnv::IndexOf(const Table& table) const {
  for (size_t i = 0; i < data_.corpus.tables.size(); ++i) {
    if (&data_.corpus.tables[i] == &table) return static_cast<int>(i);
  }
  return -1;
}

ColumnEmbedder BenchEnv::TabbinColumnComposite() {
  return [this](const Table& t, int col) {
    return tabbin_->ColumnComposite(*Encodings(t), col);
  };
}

ColumnEmbedder BenchEnv::TabbinColumnSingle() {
  return [this](const Table& t, int col) {
    return tabbin_->ColumnSingle(*Encodings(t), col);
  };
}

TableEmbedder BenchEnv::TabbinTableComposite1() {
  return [this](const Table& t) {
    return tabbin_->TableComposite1(*Encodings(t));
  };
}

TableEmbedder BenchEnv::TabbinTableComposite2() {
  return [this](const Table& t) {
    std::vector<float> caption =
        bert_ ? bert_->EncodeText(t.caption()) : std::vector<float>{};
    return tabbin_->TableComposite2(*Encodings(t), caption);
  };
}

TableEmbedder BenchEnv::TabbinTableSingle() {
  return [this](const Table& t) {
    return tabbin_->TableSingle(*Encodings(t));
  };
}

CellEmbedder BenchEnv::TabbinEntity() {
  return [this](const Table& t, int row, int col) {
    return tabbin_->EntityEmbedding(*Encodings(t), row, col);
  };
}

ColumnEmbedder BenchEnv::TutaColumn() {
  return [this](const Table& t, int col) { return tuta_->EncodeColumn(t, col); };
}
TableEmbedder BenchEnv::TutaTable() {
  return [this](const Table& t) { return tuta_->EncodeTable(t); };
}
CellEmbedder BenchEnv::TutaEntity() {
  return [this](const Table& t, int row, int col) {
    return tuta_->EncodeCell(t, row, col);
  };
}

ColumnEmbedder BenchEnv::BertColumn() {
  return [this](const Table& t, int col) { return bert_->EncodeColumn(t, col); };
}
TableEmbedder BenchEnv::BertTable() {
  return [this](const Table& t) { return bert_->EncodeTable(t); };
}
CellEmbedder BenchEnv::BertEntity() {
  return [this](const Table& t, int row, int col) {
    return bert_->EncodeCell(t, row, col);
  };
}

ColumnEmbedder BenchEnv::W2vColumn() {
  return [this](const Table& t, int col) {
    std::string text;
    for (int r = 0; r < t.rows(); ++r) {
      if (!t.cell(r, col).is_empty()) {
        text += t.cell(r, col).value.ToString() + " ";
      }
    }
    return w2v_->Embed(text);
  };
}

TableEmbedder BenchEnv::W2vTable() {
  return [this](const Table& t) {
    std::string text = t.caption();
    for (const auto& tuple : SerializeTuples(t)) text += " " + tuple;
    return w2v_->Embed(text);
  };
}

CellEmbedder BenchEnv::W2vEntity() {
  return [this](const Table& t, int row, int col) {
    return w2v_->Embed(t.cell(row, col).value.ToString());
  };
}

std::vector<ColumnQuery> FilterColumns(
    const LabeledCorpus& data,
    const std::function<bool(const Table&, const ColumnQuery&)>& pred) {
  std::vector<ColumnQuery> out;
  for (const auto& q : data.columns) {
    const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
    if (pred(t, q)) out.push_back(q);
  }
  return out;
}

std::vector<TableQuery> FilterTables(
    const LabeledCorpus& data,
    const std::function<bool(const Table&)>& pred) {
  std::vector<TableQuery> out;
  for (const auto& q : data.tables) {
    const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
    if (pred(t)) out.push_back(q);
  }
  return out;
}

void PrintHeader(const std::string& table_id, const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", table_id.c_str(), title.c_str());
  std::printf("==========================================================\n");
  std::printf("%-22s %-28s %7s %7s %5s\n", "model", "split", "MAP@20",
              "MRR@20", "n");
  std::printf("----------------------------------------------------------\n");
}

void PrintRow(const std::string& model, const std::string& split, double map,
              double mrr, int queries) {
  if (queries >= 0) {
    std::printf("%-22s %-28s %7.3f %7.3f %5d\n", model.c_str(), split.c_str(),
                map, mrr, queries);
  } else {
    std::printf("%-22s %-28s %7.3f %7.3f\n", model.c_str(), split.c_str(),
                map, mrr);
  }
}

void PrintExpectation(const std::string& text) {
  std::printf("----------------------------------------------------------\n");
  std::printf("paper shape: %s\n", text.c_str());
}

}  // namespace bench
}  // namespace tabbin
