#include "bench/common.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/snapshot.h"

namespace tabbin {
namespace bench {

namespace {
std::string g_snapshot_dir;
int g_shards = 1;
}  // namespace

void InitFromArgs(int argc, char** argv) {
  const std::string prefix = "--snapshot_dir=";
  const std::string shards_prefix = "--shards=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) g_snapshot_dir = arg.substr(prefix.size());
    if (arg.rfind(shards_prefix, 0) == 0) {
      g_shards = std::max(1, std::atoi(arg.c_str() + shards_prefix.size()));
    }
  }
  if (g_snapshot_dir.empty()) {
    if (const char* env = std::getenv("TABBIN_SNAPSHOT_DIR")) {
      g_snapshot_dir = env;
    }
  }
}

const std::string& SnapshotDir() { return g_snapshot_dir; }

int NumShards() { return g_shards; }

TabBiNConfig BenchTabBiNConfig() {
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  cfg.pretrain_steps = 80;
  cfg.batch_size = 4;
  cfg.learning_rate = 1.5e-3f;
  return cfg;
}

BertLikeConfig BenchBertConfig() {
  BertLikeConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  cfg.pretrain_steps = 80;
  cfg.batch_size = 4;
  cfg.learning_rate = 1.5e-3f;
  return cfg;
}

ClusterEvalOptions BenchEvalOptions() {
  ClusterEvalOptions opts;
  opts.k = 20;
  opts.max_queries = 120;
  opts.use_lsh = true;
  return opts;
}

BenchEnv::BenchEnv(const std::string& dataset, const ModelSet& models,
                   int num_tables, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tables = num_tables;
  gen.seed = seed;
  data_ = GenerateDataset(dataset, gen);

  TabBiNConfig cfg = BenchTabBiNConfig();
  // Capacity covers the whole corpus so no bench eval ever thrashes.
  ServiceOptions service_opts;
  service_opts.encoder_cache_capacity =
      std::max<size_t>(256, data_.corpus.tables.size());
  const std::string snap_path =
      SnapshotDir().empty()
          ? ""
          : SnapshotDir() + "/" + dataset + "_s" + std::to_string(seed) +
                ".tbsn";

  // Warm start: a prior run of any paper table persisted the trained
  // models (and their table encodings) for this dataset/seed; loading
  // them replaces pretraining entirely.
  bool warm = false;
  if (models.tabbin && !snap_path.empty()) {
    auto snapshot = SnapshotReader::FromFile(snap_path);
    if (snapshot.ok()) {
      auto sys = TabBiNSystem::FromSnapshot(snapshot.value());
      if (sys.ok() && sys.value().config() != cfg) {
        // A stale snapshot from an older BenchTabBiNConfig() would
        // silently pin every "regenerated" number to the old geometry.
        TABBIN_LOG(WARNING)
            << dataset << ": snapshot " << snap_path
            << " was written under a different bench config; re-pretraining";
      } else if (sys.ok()) {
        tabbin_ = std::make_shared<TabBiNSystem>(std::move(sys).value());
        service_ = MakeServing(tabbin_, NumShards(), service_opts);
        auto warmed = service_->engine().WarmStart(snapshot.value());
        if (warmed.ok()) {
          TABBIN_LOG(INFO) << dataset << ": warm start from " << snap_path
                           << " (" << warmed.value()
                           << " cached table encodings)";
          warm = true;
        } else {
          service_.reset();
          TABBIN_LOG(WARNING)
              << dataset << ": snapshot cache rejected ("
              << warmed.status().ToString() << "); re-pretraining";
        }
      } else {
        TABBIN_LOG(WARNING) << dataset << ": snapshot rejected ("
                            << sys.status().ToString()
                            << "); re-pretraining";
      }
    } else if (snapshot.status().code() != StatusCode::kIoError) {
      // Missing file (IoError) is the normal first run; anything else
      // means the snapshot exists but is corrupt — say so before the
      // silent re-pretrain overwrites the evidence.
      TABBIN_LOG(WARNING) << dataset << ": snapshot unreadable ("
                          << snapshot.status().ToString()
                          << "); re-pretraining";
    }
  }

  if (!warm) {
    tabbin_ = std::make_shared<TabBiNSystem>(
        TabBiNSystem::Create(data_.corpus.tables, cfg));
    // Register the dataset's catalogs so type inference covers them (the
    // paper's "custom list of named-entities" step). A warm-started
    // system skips this: the snapshot persists the full lexicon.
    for (const auto& cat : data_.catalogs) {
      SemType type = SemType::kText;
      if (cat.name == "drug") type = SemType::kDrug;
      else if (cat.name == "vaccine") type = SemType::kVaccine;
      else if (cat.name == "disease") type = SemType::kDisease;
      else if (cat.name == "symptom") type = SemType::kSymptom;
      else if (cat.name == "treatment") type = SemType::kTreatment;
      else if (cat.name == "organization") type = SemType::kOrganization;
      else if (cat.name == "city" || cat.name == "state" ||
               cat.name == "region") {
        type = SemType::kPlace;
      } else {
        continue;
      }
      for (const auto& e : cat.entities) tabbin_->typer()->AddTerm(e, type);
    }
    if (models.tabbin) {
      TABBIN_LOG(INFO) << dataset << ": pre-training TabBiN (4 models)";
      tabbin_->Pretrain(data_.corpus.tables);
    }
    service_ = MakeServing(tabbin_, NumShards(), service_opts);
  }
  if (models.tabbin) PrewarmEncodings();
  if (models.tabbin && !warm && !snap_path.empty()) {
    SnapshotWriter snapshot;
    tabbin_->AppendTo(&snapshot);
    service_->engine().AppendCacheTo(&snapshot);
    Status st = snapshot.ToFile(snap_path);
    if (st.ok()) {
      TABBIN_LOG(INFO) << dataset << ": wrote snapshot " << snap_path;
    } else {
      TABBIN_LOG(WARNING) << dataset << ": snapshot write failed: "
                          << st.ToString();
    }
  }
  if (models.tuta) {
    TABBIN_LOG(INFO) << dataset << ": pre-training TUTA-like";
    tuta_ = std::make_unique<TutaModel>(cfg, &tabbin_->vocab(),
                                        tabbin_->typer());
    tuta_->Pretrain(data_.corpus.tables);
  }
  if (models.bertlike) {
    TABBIN_LOG(INFO) << dataset << ": pre-training BertLike";
    bert_ = std::make_unique<BertLikeModel>(BenchBertConfig(),
                                            &tabbin_->vocab());
    std::vector<std::string> texts;
    for (const auto& t : data_.corpus.tables) {
      texts.push_back(t.caption());
      for (auto& tuple : SerializeTuples(t)) texts.push_back(std::move(tuple));
    }
    bert_->Pretrain(texts);
  }
  if (models.word2vec) {
    TABBIN_LOG(INFO) << dataset << ": training Word2Vec";
    Word2VecConfig wcfg;
    wcfg.dim = 64;  // scaled with the transformer hidden sizes
    w2v_ = std::make_unique<Word2Vec>(wcfg);
    std::vector<std::string> sentences;
    for (const auto& t : data_.corpus.tables) {
      for (auto& tuple : SerializeTuples(t)) {
        sentences.push_back(std::move(tuple));
      }
    }
    w2v_->Train(sentences);
  }
}

TabBinServing& BenchEnv::service() {
  if (!service_indexed_) {
    // Encodings are already prewarmed, so indexing costs composites +
    // LSH inserts only.
    auto report = service_->AddTables(data_.corpus.tables);
    if (!report.ok()) {
      TABBIN_LOG(WARNING) << "BenchEnv: corpus indexing failed: "
                          << report.status().ToString();
    }
    service_indexed_ = true;
  }
  return *service_;
}

std::shared_ptr<const TableEncodings> BenchEnv::Encodings(const Table& table) {
  const int index = IndexOf(table);
  if (index >= 0 && index < static_cast<int>(prewarmed_.size())) {
    return prewarmed_[static_cast<size_t>(index)];
  }
  // Not a corpus table (or prewarm skipped): the engine's content
  // fingerprint still deduplicates repeated encodes.
  return service_->engine().Encode(table);
}

void BenchEnv::PrewarmEncodings() {
  prewarmed_ = service_->engine().EncodeBatch(data_.corpus.tables);
}

int BenchEnv::IndexOf(const Table& table) const {
  for (size_t i = 0; i < data_.corpus.tables.size(); ++i) {
    if (&data_.corpus.tables[i] == &table) return static_cast<int>(i);
  }
  return -1;
}

ColumnEmbedder BenchEnv::TabbinColumnComposite() {
  // The service accessor is the production embedding path (engine-cached
  // encode → CC composite); paper tables measure the code users call.
  return [this](const Table& t, int col) {
    return service_->ColumnEmbedding(t, col);
  };
}

ColumnEmbedder BenchEnv::TabbinColumnSingle() {
  return [this](const Table& t, int col) {
    return tabbin_->ColumnSingle(*Encodings(t), col);
  };
}

TableEmbedder BenchEnv::TabbinTableComposite1() {
  return [this](const Table& t) { return service_->TableEmbedding(t); };
}

TableEmbedder BenchEnv::TabbinTableComposite2() {
  return [this](const Table& t) {
    std::vector<float> caption =
        bert_ ? bert_->EncodeText(t.caption()) : std::vector<float>{};
    return tabbin_->TableComposite2(*Encodings(t), caption);
  };
}

TableEmbedder BenchEnv::TabbinTableSingle() {
  return [this](const Table& t) {
    return tabbin_->TableSingle(*Encodings(t));
  };
}

CellEmbedder BenchEnv::TabbinEntity() {
  return [this](const Table& t, int row, int col) {
    return service_->EntityEmbedding(t, row, col);
  };
}

ColumnEmbedder BenchEnv::TutaColumn() {
  return [this](const Table& t, int col) { return tuta_->EncodeColumn(t, col); };
}
TableEmbedder BenchEnv::TutaTable() {
  return [this](const Table& t) { return tuta_->EncodeTable(t); };
}
CellEmbedder BenchEnv::TutaEntity() {
  return [this](const Table& t, int row, int col) {
    return tuta_->EncodeCell(t, row, col);
  };
}

ColumnEmbedder BenchEnv::BertColumn() {
  return [this](const Table& t, int col) { return bert_->EncodeColumn(t, col); };
}
TableEmbedder BenchEnv::BertTable() {
  return [this](const Table& t) { return bert_->EncodeTable(t); };
}
CellEmbedder BenchEnv::BertEntity() {
  return [this](const Table& t, int row, int col) {
    return bert_->EncodeCell(t, row, col);
  };
}

ColumnEmbedder BenchEnv::W2vColumn() {
  return [this](const Table& t, int col) {
    std::string text;
    for (int r = 0; r < t.rows(); ++r) {
      if (!t.cell(r, col).is_empty()) {
        text += t.cell(r, col).value.ToString() + " ";
      }
    }
    return w2v_->Embed(text);
  };
}

TableEmbedder BenchEnv::W2vTable() {
  return [this](const Table& t) {
    std::string text = t.caption();
    for (const auto& tuple : SerializeTuples(t)) text += " " + tuple;
    return w2v_->Embed(text);
  };
}

CellEmbedder BenchEnv::W2vEntity() {
  return [this](const Table& t, int row, int col) {
    return w2v_->Embed(t.cell(row, col).value.ToString());
  };
}

std::vector<ColumnQuery> FilterColumns(
    const LabeledCorpus& data,
    const std::function<bool(const Table&, const ColumnQuery&)>& pred) {
  std::vector<ColumnQuery> out;
  for (const auto& q : data.columns) {
    const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
    if (pred(t, q)) out.push_back(q);
  }
  return out;
}

std::vector<TableQuery> FilterTables(
    const LabeledCorpus& data,
    const std::function<bool(const Table&)>& pred) {
  std::vector<TableQuery> out;
  for (const auto& q : data.tables) {
    const Table& t = data.corpus.tables[static_cast<size_t>(q.table_index)];
    if (pred(t)) out.push_back(q);
  }
  return out;
}

void PrintHeader(const std::string& table_id, const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s — %s\n", table_id.c_str(), title.c_str());
  std::printf("==========================================================\n");
  std::printf("%-22s %-28s %7s %7s %5s\n", "model", "split", "MAP@20",
              "MRR@20", "n");
  std::printf("----------------------------------------------------------\n");
}

void PrintRow(const std::string& model, const std::string& split, double map,
              double mrr, int queries) {
  if (queries >= 0) {
    std::printf("%-22s %-28s %7.3f %7.3f %5d\n", model.c_str(), split.c_str(),
                map, mrr, queries);
  } else {
    std::printf("%-22s %-28s %7.3f %7.3f\n", model.c_str(), split.c_str(),
                map, mrr);
  }
}

void PrintExpectation(const std::string& text) {
  std::printf("----------------------------------------------------------\n");
  std::printf("paper shape: %s\n", text.c_str());
}

}  // namespace bench
}  // namespace tabbin
