// Regenerates paper Table 5: Table Clustering MAP/MRR on CovidKG and
// CancerKG — tables with HMD only vs HMD+VMD (non-relational), mostly
// numerical content, and nested tables. Expected shape: TabBiN beats
// TUTA most on nested and HMD+VMD splits (paper: +0.17 MAP on nested
// CancerKG, +0.14 on CovidKG HMD tables).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  models.tuta = true;
  models.bertlike = true;
  models.word2vec = true;
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 5", "TC — HMD vs HMD+VMD, numerical, nested");
  for (const std::string& dataset : {std::string("covidkg"),
                                     std::string("cancerkg")}) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    // Splits are *query* restrictions; the retrieval pool is always the
    // full corpus (a nested query may legitimately retrieve non-nested
    // tables of the same topic).
    auto split_indices = [&](const std::function<bool(const Table&)>& pred) {
      std::vector<int> out;
      for (size_t i = 0; i < data.tables.size(); ++i) {
        const Table& t = data.corpus.tables[static_cast<size_t>(
            data.tables[i].table_index)];
        if (pred(t)) out.push_back(static_cast<int>(i));
      }
      return out;
    };
    auto hmd_only = split_indices([](const Table& t) {
      return t.vmd_cols() == 0 && !t.HasNesting();
    });
    auto hmd_vmd = split_indices([](const Table& t) {
      return t.vmd_cols() > 0;
    });
    auto numeric = split_indices([](const Table& t) {
      return IsNumericTable(t, 0.8);
    });
    auto nested = split_indices([](const Table& t) {
      return t.HasNesting();
    });

    struct Entry {
      const char* name;
      TableEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN", env.TabbinTableComposite2()},
        {"TUTA-like", env.TutaTable()},
        {"BioBERT-sub", env.BertTable()},
        {"Word2Vec", env.W2vTable()},
    };
    struct Split {
      const char* name;
      const std::vector<int>* queries;
    };
    std::vector<Split> splits = {{"hmd-only", &hmd_only},
                                 {"hmd+vmd", &hmd_vmd},
                                 {">80% numeric", &numeric},
                                 {"nested", &nested}};
    for (auto& e : entries) {
      auto items = EmbedTables(data.corpus, data.tables, e.embed);
      for (auto& s : splits) {
        if (s.queries->size() < 5) continue;  // split too small to score
        ClusterEvalOptions opts = eval_opts;
        opts.query_indices = *s.queries;
        auto r = EvaluateClustering(items, opts);
        PrintRow(e.name, dataset + "/" + s.name, r.map, r.mrr, r.queries);
      }
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "TabBiN leads on nested and HMD+VMD splits (paper: +0.17 MAP vs TUTA "
      "on CancerKG nested, +0.14 on CovidKG HMD).");
  return 0;
}
