// Regenerates paper Table 4: Column Clustering MAP/MRR — textual vs
// numerical columns, TabBiN vs TUTA vs BioBERT-sub vs Word2Vec, on all
// five datasets. Expected shape: TabBiN >= TUTA >= BioBERT >= W2V, with
// the biggest TabBiN deltas on numerical columns (units + numeric
// features are TabBiN-only signals).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  models.tuta = true;
  models.bertlike = true;
  models.word2vec = true;
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 4", "CC MAP/MRR — textual and numerical columns");
  for (const std::string& dataset : DatasetNames()) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    auto text_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return !IsNumericColumn(t, q.col);
        });
    auto num_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return IsNumericColumn(t, q.col);
        });

    struct Entry {
      const char* name;
      ColumnEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN", env.TabbinColumnComposite()},
        {"TUTA-like", env.TutaColumn()},
        {"BioBERT-sub", env.BertColumn()},
        {"Word2Vec", env.W2vColumn()},
    };
    for (auto& e : entries) {
      auto textual = EvaluateClustering(
          EmbedColumns(data.corpus, text_cols, e.embed), eval_opts);
      auto numerical = EvaluateClustering(
          EmbedColumns(data.corpus, num_cols, e.embed), eval_opts);
      PrintRow(e.name, dataset + "/textual", textual.map, textual.mrr,
               textual.queries);
      PrintRow(e.name, dataset + "/numerical", numerical.map, numerical.mrr,
               numerical.queries);
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "TabBiN wins or ties everywhere; largest deltas on numerical columns "
      "(paper: up to +0.28 MAP over TUTA/BioBERT on Webtables numerical).");
  return 0;
}
