// perf_report — machine-readable performance trajectory for the repo.
//
// Runs the serving-path micro-workloads (kernel candidate scoring, the
// int8 quantized first-pass scan vs the float scan, the blocked GEMM,
// LSH hashing, encoder forward passes, TabBinService queries and
// incremental writes, plus snapshot cold start: v1 heap load vs v2
// mapped open) with a self-contained timer — no google-benchmark
// dependency, so the binary builds everywhere the library does — and
// writes BENCH_PR10.json:
//
//   { "dispatch": "<active kernel level>",
//     "results": [ {"op": ..., "ns_per_op": ..., "mb_per_s": ...,
//                   "items_per_s": ..., "dispatch": ...}, ... ],
//     "open_loop": [ {"target_qps": ..., "p50_ms": ..., "p95_ms": ...,
//                     "p99_ms": ..., "rejected": ...}, ... ],
//     "derived": { "candidate_scoring_speedup_vs_per_pair": ...,
//                  "quantized_scan_speedup_vs_float_scan": ...,
//                  "quantized_recall_at_10_r4": ..., ... } }
//
// The open_loop section drives the AsyncExecutor (exec/executor.h)
// with scheduled Poisson-free fixed-rate arrivals — requests are
// stamped at their SCHEDULED arrival time, so queueing delay counts
// against latency (no coordinated omission) — at a moderate rate and
// at ~2x the measured single-thread capacity, where admission control
// is expected to shed load instead of growing an unbounded backlog.
//
// The hnsw_frontier section sweeps ef_search over a 100k-column
// clustered corpus and records, per ef, recall@10 vs the exact float
// oracle plus ns/op of candidate generation + exact top-10 rerank —
// the whole serving recipe — next to the same figures for the LSH
// bucket pool. That is the recall/QPS frontier behind the
// ServiceOptions{index_kind, hnsw_ef_search} knobs.
//
// Usage: perf_report [output.json]   (default: BENCH_PR10.json in cwd)
//
// CI runs this as a perf smoke step and uploads the JSON as an
// artifact; compare files across PRs for the trajectory. Set
// TABBIN_FORCE_SCALAR=1 to record the portable-scalar baseline on the
// same machine. The run doubles as two quality gates: it exits
// non-zero when recall@10 of the quantized two-stage scan vs the float
// oracle drops below 0.99 at the default shortlist multiplier (r=4),
// or when hnsw recall@10 at the default ef_search drops below 0.95.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "exec/executor.h"
#include "index/hnsw_index.h"
#include "service/table_service.h"
#include "tasks/lsh.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace tabbin {
namespace {

struct BenchResult {
  std::string op;
  double ns_per_op = 0;
  double mb_per_s = 0;     // 0 when bytes/op is not meaningful
  double items_per_s = 0;  // 0 when items/op is not meaningful
};

// Times fn() until it has run for >= 200ms (after one warmup call) and
// returns average ns per call. fn must return a value the optimizer
// cannot discard; we accumulate it into a volatile sink.
volatile double g_sink = 0;

template <typename Fn>
double TimeNs(const Fn& fn) {
  using Clock = std::chrono::steady_clock;
  g_sink += fn();  // warmup
  long iters = 0;
  const auto start = Clock::now();
  std::chrono::nanoseconds elapsed{0};
  do {
    g_sink += fn();
    ++iters;
    elapsed = Clock::now() - start;
  } while (elapsed < std::chrono::milliseconds(200));
  return static_cast<double>(elapsed.count()) / static_cast<double>(iters);
}

BenchResult Report(const std::string& op, double ns, double mb_per_op,
                   double items_per_op) {
  BenchResult r;
  r.op = op;
  r.ns_per_op = ns;
  if (mb_per_op > 0) r.mb_per_s = mb_per_op * 1e9 / ns;
  if (items_per_op > 0) r.items_per_s = items_per_op * 1e9 / ns;
  std::printf("%-40s %12.1f ns/op %10.1f MB/s %12.1f items/s\n",
              r.op.c_str(), r.ns_per_op, r.mb_per_s, r.items_per_s);
  return r;
}

using bench::PerPairCosineBaseline;

// --- Open-loop executor load -----------------------------------------
// Fixed-rate arrivals against the AsyncExecutor. Latency for each
// request is completion time minus its SCHEDULED arrival time — if the
// load thread falls behind schedule, that delay is charged to the
// request, so queueing under overload shows up in the percentiles
// instead of being coordinated away.
struct OpenLoopRow {
  double target_qps = 0;
  int sent = 0;
  int completed_ok = 0;
  int rejected = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t batches = 0;
  uint64_t batched_jobs = 0;
  uint64_t max_batch_seen = 0;
};

double PercentileMs(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

OpenLoopRow RunOpenLoop(TabBinServing& serving,
                        const std::vector<Table>& tables, double target_qps,
                        int n_requests) {
  using Clock = std::chrono::steady_clock;
  ExecutorOptions eopts;
  eopts.read_queue_depth = 64;
  AsyncExecutor exec(&serving, eopts);

  std::vector<std::future<Result<QueryResponse>>> futures(
      static_cast<size_t>(n_requests));
  std::vector<Clock::time_point> scheduled(static_cast<size_t>(n_requests));
  std::vector<Clock::time_point> done(static_cast<size_t>(n_requests));
  std::atomic<int> produced{0};

  // The collector stamps each completion as it happens; the executor
  // resolves read promises in FIFO order, so waiting in submission
  // order observes each future at (essentially) the moment it is set.
  std::thread collector([&] {
    for (int i = 0; i < n_requests; ++i) {
      while (produced.load(std::memory_order_acquire) <= i) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
      const size_t idx = static_cast<size_t>(i);
      futures[idx].wait();
      done[idx] = Clock::now();
    }
  });

  const auto start = Clock::now();
  const std::chrono::nanoseconds gap(
      static_cast<long long>(1e9 / target_qps));
  for (int i = 0; i < n_requests; ++i) {
    const auto arrival = start + gap * i;
    std::this_thread::sleep_until(arrival);
    const size_t idx = static_cast<size_t>(i);
    scheduled[idx] = arrival;
    const Table& t = tables[idx % tables.size()];
    futures[idx] =
        exec.SubmitSimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
    produced.store(i + 1, std::memory_order_release);
  }
  collector.join();

  OpenLoopRow row;
  row.target_qps = target_qps;
  row.sent = n_requests;
  std::vector<double> lat_ms;
  lat_ms.reserve(static_cast<size_t>(n_requests));
  for (int i = 0; i < n_requests; ++i) {
    const size_t idx = static_cast<size_t>(i);
    auto r = futures[idx].get();
    if (!r.ok()) {
      ++row.rejected;
      continue;
    }
    ++row.completed_ok;
    lat_ms.push_back(
        std::chrono::duration<double, std::milli>(done[idx] - scheduled[idx])
            .count());
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  row.p50_ms = PercentileMs(lat_ms, 0.50);
  row.p95_ms = PercentileMs(lat_ms, 0.95);
  row.p99_ms = PercentileMs(lat_ms, 0.99);
  exec.Shutdown();
  const AsyncExecutor::Stats st = exec.stats();
  row.batches = st.batches;
  row.batched_jobs = st.batched_jobs;
  row.max_batch_seen = st.max_batch_seen;
  std::printf(
      "open_loop %8.0f qps: p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms  "
      "(%d ok, %d shed; %llu batches, max batch %llu)\n",
      row.target_qps, row.p50_ms, row.p95_ms, row.p99_ms, row.completed_ok,
      row.rejected, static_cast<unsigned long long>(row.batches),
      static_cast<unsigned long long>(row.max_batch_seen));
  return row;
}

int Run(const std::string& out_path) {
  std::vector<BenchResult> results;
  const std::string dispatch = kernels::ActiveName();
  std::printf("kernel dispatch: %s\n\n", dispatch.c_str());

  // --- Candidate scoring: batched norm-cached kernel vs per-pair ------
  Rng rng(7);
  const size_t dim = 72;
  const size_t n_rows = 2000, n_cand = 500;
  EmbeddingMatrix matrix;
  for (size_t i = 0; i < n_rows; ++i) {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    matrix.AppendRow(v);
  }
  std::vector<int> cand;
  for (size_t i = 0; i < n_cand; ++i) {
    cand.push_back(static_cast<int>(rng.Uniform(n_rows)));
  }
  std::vector<float> query(dim);
  for (auto& x : query) x = static_cast<float>(rng.Gaussian());
  const double cand_bytes =
      static_cast<double>(n_cand) * dim * sizeof(float) / 1e6;

  const double per_pair_ns = TimeNs([&] {
    float sum = 0.0f;
    for (int id : cand) {
      sum += PerPairCosineBaseline(query,
                                   matrix.row(static_cast<size_t>(id)));
    }
    return static_cast<double>(sum);
  });
  results.push_back(Report("candidate_scoring_per_pair_500x72",
                           per_pair_ns, cand_bytes,
                           static_cast<double>(n_cand)));

  const float inv_q = kernels::InvNorm(query.data(), query.size());
  std::vector<float> scores(n_cand);
  const double batched_ns = TimeNs([&] {
    kernels::BatchedCosineRows(query.data(), inv_q, matrix.data(),
                               matrix.cols(), cand.data(), cand.size(),
                               matrix.inv_norms(), scores.data());
    return static_cast<double>(scores[0]);
  });
  results.push_back(Report("candidate_scoring_batched_500x72", batched_ns,
                           cand_bytes, static_cast<double>(n_cand)));
  const double cosine_speedup = per_pair_ns / batched_ns;
  std::printf("  -> batched cosine speedup vs per-pair: %.2fx\n",
              cosine_speedup);

  // Same fixture through the int8 sidecar: the candidate set fits in
  // cache, so this row isolates the compute-side win of the quantized
  // kernel from the bandwidth story the 60k scan below tells.
  matrix.EnableQuantization();
  const QuantizedQuery cand_qq =
      MakeQuantizedQuery(VecView(query.data(), query.size()));
  const double quant_cand_ns = TimeNs([&] {
    QuantizedCosineRows(matrix, cand_qq, cand.data(), cand.size(),
                        scores.data());
    return static_cast<double>(scores[0]);
  });
  results.push_back(Report("candidate_scoring_quantized_500x72",
                           quant_cand_ns,
                           static_cast<double>(n_cand) * dim / 1e6,
                           static_cast<double>(n_cand)));
  const double quant_cand_speedup = batched_ns / quant_cand_ns;
  std::printf(
      "  -> quantized candidate scoring speedup vs float batched: "
      "%.2fx\n\n",
      quant_cand_speedup);

  // --- Int8 first-pass scan vs float scan -----------------------------
  // Shape chosen to be memory-bound (60k x 72 floats ~= 17 MB, well past
  // L2): this is the regime the quantized tier targets — its win comes
  // from reading 1/4 of the bytes per row, not from cheaper ALU work.
  const size_t scan_rows = 60000;
  EmbeddingMatrix scan_matrix;
  scan_matrix.Reserve(scan_rows);
  {
    std::vector<float> v(dim);
    for (size_t i = 0; i < scan_rows; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Gaussian());
      scan_matrix.AppendRow(v);
    }
  }
  scan_matrix.EnableQuantization();
  std::vector<int> scan_idx(scan_rows);
  for (size_t i = 0; i < scan_rows; ++i) scan_idx[i] = static_cast<int>(i);
  std::vector<float> scan_scores(scan_rows);
  const double scan_float_bytes =
      static_cast<double>(scan_rows) * dim * sizeof(float) / 1e6;
  const double scan_int8_bytes = static_cast<double>(scan_rows) * dim / 1e6;

  const double float_scan_ns = TimeNs([&] {
    kernels::BatchedCosineRows(query.data(), inv_q, scan_matrix.data(),
                               scan_matrix.cols(), scan_idx.data(),
                               scan_idx.size(), scan_matrix.inv_norms(),
                               scan_scores.data());
    return static_cast<double>(scan_scores[0]);
  });
  results.push_back(Report("float_scan_60000x72", float_scan_ns,
                           scan_float_bytes,
                           static_cast<double>(scan_rows)));

  const QuantizedQuery qq =
      MakeQuantizedQuery(VecView(query.data(), query.size()));
  const double quant_scan_ns = TimeNs([&] {
    QuantizedCosineRows(scan_matrix, qq, scan_idx.data(), scan_idx.size(),
                        scan_scores.data());
    return static_cast<double>(scan_scores[0]);
  });
  results.push_back(Report("quantized_scan_60000x72", quant_scan_ns,
                           scan_int8_bytes,
                           static_cast<double>(scan_rows)));
  const double quant_speedup = float_scan_ns / quant_scan_ns;
  std::printf("  -> quantized scan speedup vs float scan: %.2fx\n",
              quant_speedup);

  // Exact rerank of a k*r shortlist — the second stage's whole cost.
  const int rerank_k = 10, rerank_r = 4;
  std::vector<int> shortlist(static_cast<size_t>(rerank_k * rerank_r));
  for (size_t i = 0; i < shortlist.size(); ++i) {
    shortlist[i] = static_cast<int>(rng.Uniform(scan_rows));
  }
  std::vector<float> rerank_scores(shortlist.size());
  const double rerank_ns = TimeNs([&] {
    kernels::BatchedCosineRows(query.data(), inv_q, scan_matrix.data(),
                               scan_matrix.cols(), shortlist.data(),
                               shortlist.size(), scan_matrix.inv_norms(),
                               rerank_scores.data());
    return static_cast<double>(rerank_scores[0]);
  });
  results.push_back(Report("rerank_shortlist_40x72", rerank_ns, 0,
                           static_cast<double>(shortlist.size())));

  // Corpus density at dim 72: bytes held per million columns, float row
  // + inv-norm cache vs int8 codes + per-row (scale, zero). The scan
  // itself touches exactly 4x fewer bytes (row data only).
  const double float_bytes_per_mcols =
      1e6 * (dim * sizeof(float) + sizeof(float));
  const double int8_bytes_per_mcols =
      1e6 * (dim * sizeof(int8_t) + sizeof(float) + sizeof(int32_t));
  std::printf(
      "  -> bytes per million columns (dim 72): float %.0f MB, int8 "
      "%.0f MB (%.2fx denser)\n",
      float_bytes_per_mcols / 1e6, int8_bytes_per_mcols / 1e6,
      float_bytes_per_mcols / int8_bytes_per_mcols);

  // Recall@10 of scan -> shortlist -> rerank vs the float oracle,
  // sweeping the shortlist multiplier r. Seeded queries; the r=4 figure
  // is the CI quality gate.
  const auto tie_order = [&scan_scores](int a, int b) {
    if (scan_scores[static_cast<size_t>(a)] !=
        scan_scores[static_cast<size_t>(b)]) {
      return scan_scores[static_cast<size_t>(a)] >
             scan_scores[static_cast<size_t>(b)];
    }
    return a < b;
  };
  const int recall_sweep[] = {1, 2, 4, 8};
  double recall_at[4] = {0, 0, 0, 0};
  const int recall_queries = 20;
  std::vector<float> approx(scan_rows);
  for (int qi = 0; qi < recall_queries; ++qi) {
    std::vector<float> rq(dim);
    for (auto& x : rq) x = static_cast<float>(rng.Gaussian());
    const float rq_inv = kernels::InvNorm(rq.data(), rq.size());
    // Float oracle top-10.
    kernels::BatchedCosineRows(rq.data(), rq_inv, scan_matrix.data(),
                               scan_matrix.cols(), scan_idx.data(),
                               scan_idx.size(), scan_matrix.inv_norms(),
                               scan_scores.data());
    std::vector<int> oracle = scan_idx;
    std::nth_element(oracle.begin(), oracle.begin() + rerank_k, oracle.end(),
                     tie_order);
    oracle.resize(static_cast<size_t>(rerank_k));
    std::sort(oracle.begin(), oracle.end());
    // One quantized pass, reused across the r sweep.
    const QuantizedQuery rqq =
        MakeQuantizedQuery(VecView(rq.data(), rq.size()));
    QuantizedCosineRows(scan_matrix, rqq, scan_idx.data(), scan_idx.size(),
                        approx.data());
    for (size_t ri = 0; ri < 4; ++ri) {
      const size_t cut = static_cast<size_t>(rerank_k * recall_sweep[ri]);
      std::vector<int> pool = scan_idx;
      std::nth_element(pool.begin(), pool.begin() + cut, pool.end(),
                       [&approx](int a, int b) {
                         if (approx[static_cast<size_t>(a)] !=
                             approx[static_cast<size_t>(b)]) {
                           return approx[static_cast<size_t>(a)] >
                                  approx[static_cast<size_t>(b)];
                         }
                         return a < b;
                       });
      pool.resize(cut);
      // Exact rerank of the shortlist (scan_scores still holds this
      // query's float scores for every row).
      std::nth_element(pool.begin(),
                       pool.begin() + std::min<size_t>(rerank_k, cut),
                       pool.end(), tie_order);
      pool.resize(std::min<size_t>(rerank_k, cut));
      std::sort(pool.begin(), pool.end());
      std::vector<int> hit;
      std::set_intersection(oracle.begin(), oracle.end(), pool.begin(),
                            pool.end(), std::back_inserter(hit));
      recall_at[ri] += static_cast<double>(hit.size()) / rerank_k;
    }
  }
  for (double& r : recall_at) r /= recall_queries;
  std::printf(
      "  -> recall@10 vs float oracle: r=1 %.3f, r=2 %.3f, r=4 %.3f, "
      "r=8 %.3f\n\n",
      recall_at[0], recall_at[1], recall_at[2], recall_at[3]);

  // --- Graph ANN candidate generation: HNSW walk vs LSH pool ----------
  // A 100k-column clustered corpus (twice the 50k acceptance floor —
  // the scale story IS the point: the LSH pool grows linearly with the
  // corpus while the walk grows ~log) (Gaussian centers + noise — serving
  // embeddings are clustered by construction: columns embed near their
  // semantic neighbors, which is also the regime where LSH buckets
  // skew hot and the pool degenerates toward a scan). Each measured op
  // is the WHOLE candidate recipe the Similar* endpoints run: generate
  // candidates, then exact float top-10 rerank.
  const size_t ann_rows = 100000;
  const size_t ann_centers = 400;
  EmbeddingMatrix ann;
  ann.Reserve(ann_rows);
  {
    std::vector<std::vector<float>> centers(ann_centers,
                                            std::vector<float>(dim));
    for (auto& c : centers) {
      for (auto& x : c) x = static_cast<float>(rng.Gaussian());
    }
    std::vector<float> v(dim);
    for (size_t i = 0; i < ann_rows; ++i) {
      const auto& c = centers[rng.Uniform(ann_centers)];
      for (size_t d = 0; d < dim; ++d) {
        v[d] = c[d] + 0.25f * static_cast<float>(rng.Gaussian());
      }
      ann.AppendRow(v);
    }
  }

  HnswIndex hnsw(static_cast<int>(dim), HnswOptions{});
  {
    using Clock = std::chrono::steady_clock;
    const auto b0 = Clock::now();
    for (size_t i = 0; i < ann_rows; ++i) {
      if (Status s = hnsw.Insert(ann, static_cast<int>(i)); !s.ok()) {
        std::fprintf(stderr, "hnsw build failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    const double build_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             b0)
            .count());
    results.push_back(Report("hnsw_build_insert_100000x72",
                             build_ns / static_cast<double>(ann_rows), 0,
                             1));
  }
  LshIndex ann_lsh(static_cast<int>(dim), 8, 12);
  for (size_t i = 0; i < ann_rows; ++i) {
    if (Status s = ann_lsh.Insert(static_cast<int>(i), ann.row(i));
        !s.ok()) {
      std::fprintf(stderr, "lsh build failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Seeded query set: perturbed corpus rows (a Similar* query IS an
  // indexed embedding).
  const int ann_queries = 32;
  std::vector<std::vector<float>> ann_q(static_cast<size_t>(ann_queries));
  std::vector<float> ann_q_inv(static_cast<size_t>(ann_queries));
  for (auto& q : ann_q) {
    q.resize(dim);
    VecView base = ann.row(rng.Uniform(ann_rows));
    for (size_t d = 0; d < dim; ++d) {
      q[d] = base.data()[d] + 0.05f * static_cast<float>(rng.Gaussian());
    }
  }
  for (int i = 0; i < ann_queries; ++i) {
    ann_q_inv[static_cast<size_t>(i)] = kernels::InvNorm(
        ann_q[static_cast<size_t>(i)].data(), dim);
  }

  // Exact float oracle top-10 per query (sorted id sets for recall).
  std::vector<int> ann_idx(ann_rows);
  for (size_t i = 0; i < ann_rows; ++i) ann_idx[i] = static_cast<int>(i);
  std::vector<float> ann_scores(ann_rows);
  std::vector<std::vector<int>> ann_oracle(
      static_cast<size_t>(ann_queries));
  for (int qi = 0; qi < ann_queries; ++qi) {
    const size_t q = static_cast<size_t>(qi);
    kernels::BatchedCosineRows(ann_q[q].data(), ann_q_inv[q], ann.data(),
                               ann.cols(), ann_idx.data(), ann_idx.size(),
                               ann.inv_norms(), ann_scores.data());
    std::vector<int> top = ann_idx;
    std::nth_element(top.begin(), top.begin() + rerank_k, top.end(),
                     [&ann_scores](int a, int b) {
                       if (ann_scores[static_cast<size_t>(a)] !=
                           ann_scores[static_cast<size_t>(b)]) {
                         return ann_scores[static_cast<size_t>(a)] >
                                ann_scores[static_cast<size_t>(b)];
                       }
                       return a < b;
                     });
    top.resize(static_cast<size_t>(rerank_k));
    std::sort(top.begin(), top.end());
    ann_oracle[q] = std::move(top);
  }

  // Candidates -> exact top-10, returning recall vs this query's oracle.
  std::vector<float> cand_scores;
  const auto rerank_recall = [&](const std::vector<int>& pool, size_t q) {
    if (pool.empty()) return 0.0;
    cand_scores.resize(pool.size());
    kernels::BatchedCosineRows(ann_q[q].data(), ann_q_inv[q], ann.data(),
                               ann.cols(), pool.data(), pool.size(),
                               ann.inv_norms(), cand_scores.data());
    std::vector<int> order(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) order[i] = static_cast<int>(i);
    const size_t cut = std::min<size_t>(static_cast<size_t>(rerank_k),
                                        order.size());
    std::nth_element(order.begin(), order.begin() + cut, order.end(),
                     [&](int a, int b) {
                       if (cand_scores[static_cast<size_t>(a)] !=
                           cand_scores[static_cast<size_t>(b)]) {
                         return cand_scores[static_cast<size_t>(a)] >
                                cand_scores[static_cast<size_t>(b)];
                       }
                       return pool[static_cast<size_t>(a)] <
                              pool[static_cast<size_t>(b)];
                     });
    order.resize(cut);
    std::vector<int> ids;
    ids.reserve(cut);
    for (int o : order) ids.push_back(pool[static_cast<size_t>(o)]);
    std::sort(ids.begin(), ids.end());
    const std::vector<int>& oracle = ann_oracle[q];
    std::vector<int> hit;
    std::set_intersection(oracle.begin(), oracle.end(), ids.begin(),
                          ids.end(), std::back_inserter(hit));
    return static_cast<double>(hit.size()) / rerank_k;
  };

  // LSH baseline: bucket-pool candidates + exact rerank.
  ann_lsh.ResetPoolStats();
  double lsh_recall = 0;
  for (int qi = 0; qi < ann_queries; ++qi) {
    const size_t q = static_cast<size_t>(qi);
    lsh_recall += rerank_recall(
        ann_lsh.Query(VecView(ann_q[q].data(), dim)), q);
  }
  lsh_recall /= ann_queries;
  const LshIndex::PoolStats lsh_ps = ann_lsh.pool_stats();
  const double lsh_pool_avg =
      static_cast<double>(lsh_ps.candidates) /
      static_cast<double>(std::max<uint64_t>(1, lsh_ps.queries));
  int lsh_qi = 0;
  const double lsh_gen_ns = TimeNs([&] {
    const size_t q = static_cast<size_t>(lsh_qi++ % ann_queries);
    return rerank_recall(ann_lsh.Query(VecView(ann_q[q].data(), dim)), q);
  });
  results.push_back(
      Report("ann_candidates_lsh_100000x72", lsh_gen_ns, 0, 1));
  std::printf(
      "  -> lsh pool: recall@10 %.3f, avg pool %.0f rows scanned/query\n",
      lsh_recall, lsh_pool_avg);

  // HNSW frontier: recall/QPS vs ef_search. 96 is the serving default
  // (ServiceOptions::hnsw_ef_search) and the CI-gated point.
  struct FrontierRow {
    int ef = 0;
    double recall = 0;
    double ns_per_op = 0;
    double visited = 0;
    double scored = 0;
  };
  const int default_ef = 96;
  const int ef_sweep[] = {16, 32, 64, 96, 128, 256};
  std::vector<FrontierRow> frontier;
  double hnsw_default_ns = 0, hnsw_default_recall = 0;
  for (const int ef : ef_sweep) {
    FrontierRow row;
    row.ef = ef;
    for (int qi = 0; qi < ann_queries; ++qi) {
      const size_t q = static_cast<size_t>(qi);
      row.recall += rerank_recall(
          hnsw.Search(ann, VecView(ann_q[q].data(), dim), ef), q);
    }
    row.recall /= ann_queries;
    hnsw.ResetQueryStats();
    int hq = 0;
    row.ns_per_op = TimeNs([&] {
      const size_t q = static_cast<size_t>(hq++ % ann_queries);
      return rerank_recall(
          hnsw.Search(ann, VecView(ann_q[q].data(), dim), ef), q);
    });
    const HnswIndex::QueryStats hs = hnsw.query_stats();
    row.visited = static_cast<double>(hs.visited) /
                  static_cast<double>(std::max<uint64_t>(1, hs.queries));
    row.scored = static_cast<double>(hs.scored) /
                 static_cast<double>(std::max<uint64_t>(1, hs.queries));
    std::printf(
        "  -> hnsw ef=%3d: recall@10 %.3f, %10.1f ns/op, avg %6.0f "
        "scored, %4.0f expansions\n",
        row.ef, row.recall, row.ns_per_op, row.scored, row.visited);
    if (ef == default_ef) {
      hnsw_default_ns = row.ns_per_op;
      hnsw_default_recall = row.recall;
      results.push_back(
          Report("ann_candidates_hnsw_ef96_100000x72", row.ns_per_op, 0, 1));
    }
    frontier.push_back(row);
  }
  const double hnsw_vs_lsh_qps = lsh_gen_ns / hnsw_default_ns;
  std::printf(
      "  -> hnsw (ef=%d) vs lsh: %.2fx QPS at recall %.3f vs %.3f\n\n",
      default_ef, hnsw_vs_lsh_qps, hnsw_default_recall, lsh_recall);

  // --- Blocked GEMM at encoder-forward shape --------------------------
  const int gn = 96, gk = 72, gm = 72;
  std::vector<float> ga(static_cast<size_t>(gn) * gk);
  std::vector<float> gb(static_cast<size_t>(gk) * gm);
  for (auto& x : ga) x = static_cast<float>(rng.Gaussian());
  for (auto& x : gb) x = static_cast<float>(rng.Gaussian());
  std::vector<float> gc(static_cast<size_t>(gn) * gm);
  const double gemm_bytes =
      static_cast<double>(gn * gk + gk * gm + gn * gm) * sizeof(float) /
      1e6;
  const double gemm_ns = TimeNs([&] {
    std::fill(gc.begin(), gc.end(), 0.0f);
    kernels::Gemm(ga.data(), gb.data(), gc.data(), gn, gk, gm);
    return static_cast<double>(gc[0]);
  });
  results.push_back(Report("gemm_96x72x72", gemm_ns, gemm_bytes, 0));
  // Scalar reference at the same shape (explicit-level entry point, so
  // one report records the MatMul dispatch win even on SIMD hardware).
  const double gemm_scalar_ns = TimeNs([&] {
    std::fill(gc.begin(), gc.end(), 0.0f);
    kernels::GemmAt(kernels::Dispatch::kScalar, ga.data(), gb.data(),
                    gc.data(), gn, gk, gm);
    return static_cast<double>(gc[0]);
  });
  results.push_back(
      Report("gemm_96x72x72_scalar_ref", gemm_scalar_ns, gemm_bytes, 0));
  const double gemm_speedup = gemm_scalar_ns / gemm_ns;
  std::printf("  -> gemm dispatch speedup vs scalar: %.2fx\n\n",
              gemm_speedup);

  // --- LSH hashing: one matvec against the flat hyperplane block ------
  LshIndex lsh(static_cast<int>(dim), 8, 12);
  const double lsh_bytes =
      static_cast<double>(8 * 12) * dim * sizeof(float) / 1e6;
  const double lsh_ns = TimeNs([&] {
    return static_cast<double>(lsh.QueryKeys(query).size());
  });
  results.push_back(Report("lsh_query_keys_96planes", lsh_ns, lsh_bytes, 0));

  // --- Encoder forward + serving paths --------------------------------
  GeneratorOptions gopts;
  gopts.num_tables = 40;
  const LabeledCorpus corpus = GenerateDataset("cancerkg", gopts);
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(corpus.corpus.tables, cfg));

  const double encode_ns = TimeNs([&] {
    return static_cast<double>(
        sys->EncodeAll(corpus.corpus.tables[0]).row.hidden.rows());
  });
  results.push_back(Report("encode_all_one_table", encode_ns, 0, 1));

  TabBinService svc(sys);
  auto add = svc.AddTables(corpus.corpus.tables);
  if (!add.ok()) {
    std::fprintf(stderr, "AddTables failed: %s\n",
                 add.status().ToString().c_str());
    return 1;
  }

  const double query_ns = TimeNs([&] {
    const Table& t = corpus.corpus.tables[0];
    auto r = svc.SimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
    return r.ok() ? static_cast<double>(r.value().matches.size()) : 0.0;
  });
  results.push_back(Report("service_similar_columns", query_ns, 0, 1));

  // Mixed read/write: one churn write (add + remove of a cached-encode
  // table) followed by 8 reads, serialized — a single-threaded stand-in
  // for BM_ServiceMixedReadWrite that stays meaningful on 1-core CI.
  Table churn = corpus.corpus.tables[0];
  churn.set_id("churn");
  churn.set_caption("churn table");
  const double mixed_ns = TimeNs([&] {
    double acc = 0;
    acc += svc.AddTables({churn}).ok() ? 1 : 0;
    for (int i = 0; i < 8; ++i) {
      const Table& t =
          corpus.corpus.tables[static_cast<size_t>(i * 5 + 1) %
                               corpus.corpus.tables.size()];
      auto r = svc.SimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
      acc += r.ok() ? 1 : 0;
    }
    acc += svc.RemoveTable("churn").ok() ? 1 : 0;
    return acc;
  });
  results.push_back(Report("service_mixed_1w8r", mixed_ns, 0, 9));

  // --- Cold start: v1 heap load vs v2 mapped open ---------------------
  // The same serving state persisted both ways. Loading the v1 stream
  // re-does everything at open: parse every table's JSON, rebuild
  // lexical stats, copy every embedding row to the heap, warm-start the
  // encoder cache. Opening the v2 paged store validates the directory,
  // maps the row blocks in place, and defers table JSON to first touch
  // — the work is O(slots), not O(bytes). A ~100x larger corpus than the
  // query benches use, so the per-byte work the v1 load re-does
  // dominates the system-reconstruct constant both formats share.
  GeneratorOptions cold_opts;
  cold_opts.num_tables = 4000;
  const LabeledCorpus cold = GenerateDataset("cancerkg", cold_opts);
  TabBinService cold_svc(sys);
  auto cold_add = cold_svc.AddTables(cold.corpus.tables);
  if (!cold_add.ok()) {
    std::fprintf(stderr, "cold-start AddTables failed: %s\n",
                 cold_add.status().ToString().c_str());
    return 1;
  }
  const std::string v1_path = "/tmp/tabbin_perf_cold_v1.tbsn";
  const std::string v2_path = "/tmp/tabbin_perf_cold_v2.tbsn";
  if (Status s = cold_svc.SaveV1(v1_path); !s.ok()) {
    std::fprintf(stderr, "SaveV1 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = cold_svc.Save(v2_path); !s.ok()) {
    std::fprintf(stderr, "Save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // Cold start is time-to-ready: the clock stops once the service can
  // answer. Tearing down the previous instance happens off the clock —
  // a process opening a snapshot has no prior corpus to free.
  const auto time_load_ns = [](const std::string& path,
                               bool expect_mapped) -> double {
    using Clock = std::chrono::steady_clock;
    {
      auto warm = TabBinService::Load(path);  // warmup, untimed
      if (!warm.ok() ||
          (expect_mapped && !warm.value()->IsMapped())) {
        return -1.0;
      }
    }
    std::unique_ptr<TabBinService> keep;
    double total = 0;
    int iters = 0;
    while (total < 2e8 || iters < 3) {
      keep.reset();  // free the previous instance outside the timed region
      const auto t0 = Clock::now();
      auto loaded = TabBinService::Load(path);
      const auto t1 = Clock::now();
      if (!loaded.ok()) return -1.0;
      g_sink += static_cast<double>(loaded.value()->NumLiveTables());
      keep = std::move(loaded.value());
      total += static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      ++iters;
    }
    return total / iters;
  };
  const double v1_load_ns = time_load_ns(v1_path, /*expect_mapped=*/false);
  const double v2_open_ns = time_load_ns(v2_path, /*expect_mapped=*/true);
  if (v1_load_ns < 0 || v2_open_ns < 0) {
    std::fprintf(stderr, "cold-start load failed\n");
    return 1;
  }
  results.push_back(Report("cold_start_v1_heap_load", v1_load_ns, 0, 1));
  results.push_back(Report("cold_start_v2_mapped_open", v2_open_ns, 0, 1));
  const double cold_start_speedup = v1_load_ns / v2_open_ns;
  std::printf("  -> cold start speedup, v2 mapped open vs v1 heap load: "
              "%.2fx\n\n",
              cold_start_speedup);

  // --- Open-loop executor load ----------------------------------------
  // Calibrate against the executor's own closed-loop round-trip (which
  // includes dispatch, the coalesce-window linger, and promise/future
  // overhead — on a small machine that is several times the bare query
  // cost), then drive two arrival rates: moderate (~half the calibrated
  // capacity), where everything should be admitted, and overload (~2x),
  // where the bounded lane is expected to shed the excess with
  // ResourceExhausted instead of letting the backlog (and p99) grow
  // without bound.
  double exec_rt_ns = 0;
  {
    AsyncExecutor calib(&svc);
    const Table& t0 = corpus.corpus.tables[0];
    exec_rt_ns = TimeNs([&] {
      auto r = calib.SubmitSimilarColumns({t0.id(), nullptr, t0.vmd_cols(),
                                           10})
                   .get();
      return r.ok() ? static_cast<double>(r.value().matches.size()) : 0.0;
    });
  }
  results.push_back(
      Report("executor_single_query_roundtrip", exec_rt_ns, 0, 1));
  const double capacity_qps = 1e9 / exec_rt_ns;
  // 0.5x: everything admitted, batches of 1. 2x: micro-batching kicks
  // in and absorbs the excess (coalescing amortizes the dispatch +
  // linger overhead across up to max_batch jobs). 32x: past what
  // max_batch=16 coalescing can amortize on any machine, so the
  // bounded lane sheds — that rejection count is admission control
  // doing its job.
  const double load_multipliers[] = {0.5, 2.0, 32.0};
  const int open_loop_requests = 400;
  std::printf(
      "open-loop executor load (calibrated async capacity ~%.0f qps):\n",
      capacity_qps);
  std::vector<OpenLoopRow> open_loop;
  for (const double mult : load_multipliers) {
    open_loop.push_back(RunOpenLoop(svc, corpus.corpus.tables,
                                    std::max(1.0, mult * capacity_qps),
                                    open_loop_requests));
  }
  std::printf("\n");

  // --- JSON -----------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"dispatch\": \"%s\",\n  \"results\": [\n",
               dispatch.c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"mb_per_s\": %.1f, \"items_per_s\": %.1f, "
                 "\"dispatch\": \"%s\"}%s\n",
                 r.op.c_str(), r.ns_per_op, r.mb_per_s,
                 r.items_per_s, dispatch.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"open_loop\": [\n");
  for (size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopRow& r = open_loop[i];
    std::fprintf(f,
                 "    {\"target_qps\": %.0f, \"sent\": %d, "
                 "\"completed_ok\": %d, \"rejected\": %d, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"batches\": %llu, \"batched_jobs\": %llu, "
                 "\"max_batch_seen\": %llu}%s\n",
                 r.target_qps, r.sent, r.completed_ok, r.rejected, r.p50_ms,
                 r.p95_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.batches),
                 static_cast<unsigned long long>(r.batched_jobs),
                 static_cast<unsigned long long>(r.max_batch_seen),
                 i + 1 < open_loop.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"hnsw_frontier\": [\n");
  for (size_t i = 0; i < frontier.size(); ++i) {
    const FrontierRow& r = frontier[i];
    std::fprintf(f,
                 "    {\"ef_search\": %d, \"recall_at_10\": %.4f, "
                 "\"ns_per_op\": %.1f, \"qps\": %.1f, "
                 "\"avg_scored\": %.1f, \"avg_expansions\": %.1f}%s\n",
                 r.ef, r.recall, r.ns_per_op, 1e9 / r.ns_per_op, r.scored,
                 r.visited, i + 1 < frontier.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"derived\": {\n"
               "    \"hnsw_recall_at_10_default_ef\": %.4f,\n"
               "    \"lsh_recall_at_10\": %.4f,\n"
               "    \"lsh_avg_pool_rows\": %.1f,\n"
               "    \"hnsw_vs_lsh_qps_ratio\": %.2f,\n"
               "    \"candidate_scoring_speedup_vs_per_pair\": %.2f,\n",
               hnsw_default_recall, lsh_recall, lsh_pool_avg,
               hnsw_vs_lsh_qps, cosine_speedup);
  std::fprintf(f,
               "    \"gemm_dispatch_speedup_vs_scalar\": %.2f,\n"
               "    \"quantized_scan_speedup_vs_float_scan\": %.2f,\n"
               "    \"quantized_candidate_scoring_speedup_vs_float\": "
               "%.2f,\n"
               "    \"float_bytes_per_million_cols_dim72\": %.0f,\n"
               "    \"int8_bytes_per_million_cols_dim72\": %.0f,\n"
               "    \"quantized_density_ratio\": %.2f,\n"
               "    \"quantized_recall_at_10_r1\": %.4f,\n"
               "    \"quantized_recall_at_10_r2\": %.4f,\n"
               "    \"quantized_recall_at_10_r4\": %.4f,\n"
               "    \"quantized_recall_at_10_r8\": %.4f,\n"
               "    \"cold_start_v1_heap_load_ms\": %.3f,\n"
               "    \"cold_start_v2_mapped_open_ms\": %.3f,\n"
               "    \"cold_start_speedup_v2_vs_v1\": %.2f\n"
               "  }\n}\n",
               gemm_speedup, quant_speedup,
               quant_cand_speedup, float_bytes_per_mcols,
               int8_bytes_per_mcols,
               float_bytes_per_mcols / int8_bytes_per_mcols, recall_at[0],
               recall_at[1], recall_at[2], recall_at[3], v1_load_ns / 1e6,
               v2_open_ns / 1e6, cold_start_speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Quality gate: the two-stage scan must keep recall@10 >= 0.99 at the
  // default shortlist multiplier, or the perf smoke step fails.
  if (recall_at[2] < 0.99) {
    std::fprintf(stderr,
                 "FAIL: recall@10 at r=4 is %.4f (< 0.99 gate)\n",
                 recall_at[2]);
    return 1;
  }
  // Graph gate: the hnsw walk must hold recall@10 >= 0.95 at the
  // serving-default ef_search, or the smoke step fails.
  if (hnsw_default_recall < 0.95) {
    std::fprintf(stderr,
                 "FAIL: hnsw recall@10 at ef=%d is %.4f (< 0.95 gate)\n",
                 default_ef, hnsw_default_recall);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tabbin

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_PR10.json";
  return tabbin::Run(out);
}
