// perf_report — machine-readable performance trajectory for the repo.
//
// Runs the serving-path micro-workloads (kernel candidate scoring, the
// blocked GEMM, LSH hashing, encoder forward passes, TabBinService
// queries and incremental writes) with a self-contained timer — no
// google-benchmark dependency, so the binary builds everywhere the
// library does — and writes BENCH_PR5.json:
//
//   { "dispatch": "<active kernel level>",
//     "results": [ {"op": ..., "ns_per_op": ..., "mb_per_s": ...,
//                   "items_per_s": ..., "dispatch": ...}, ... ],
//     "derived": { "candidate_scoring_speedup_vs_per_pair": ... } }
//
// Usage: perf_report [output.json]   (default: BENCH_PR5.json in cwd)
//
// CI runs this as a perf smoke step and uploads the JSON as an
// artifact; compare files across PRs for the trajectory. Set
// TABBIN_FORCE_SCALAR=1 to record the portable-scalar baseline on the
// same machine.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "service/table_service.h"
#include "tasks/lsh.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace tabbin {
namespace {

struct BenchResult {
  std::string op;
  double ns_per_op = 0;
  double mb_per_s = 0;     // 0 when bytes/op is not meaningful
  double items_per_s = 0;  // 0 when items/op is not meaningful
};

// Times fn() until it has run for >= 200ms (after one warmup call) and
// returns average ns per call. fn must return a value the optimizer
// cannot discard; we accumulate it into a volatile sink.
volatile double g_sink = 0;

template <typename Fn>
double TimeNs(const Fn& fn) {
  using Clock = std::chrono::steady_clock;
  g_sink += fn();  // warmup
  long iters = 0;
  const auto start = Clock::now();
  std::chrono::nanoseconds elapsed{0};
  do {
    g_sink += fn();
    ++iters;
    elapsed = Clock::now() - start;
  } while (elapsed < std::chrono::milliseconds(200));
  return static_cast<double>(elapsed.count()) / static_cast<double>(iters);
}

BenchResult Report(const std::string& op, double ns, double mb_per_op,
                   double items_per_op) {
  BenchResult r;
  r.op = op;
  r.ns_per_op = ns;
  if (mb_per_op > 0) r.mb_per_s = mb_per_op * 1e9 / ns;
  if (items_per_op > 0) r.items_per_s = items_per_op * 1e9 / ns;
  std::printf("%-40s %12.1f ns/op %10.1f MB/s %12.1f items/s\n",
              r.op.c_str(), r.ns_per_op, r.mb_per_s, r.items_per_s);
  return r;
}

using bench::PerPairCosineBaseline;

int Run(const std::string& out_path) {
  std::vector<BenchResult> results;
  const std::string dispatch = kernels::ActiveName();
  std::printf("kernel dispatch: %s\n\n", dispatch.c_str());

  // --- Candidate scoring: batched norm-cached kernel vs per-pair ------
  Rng rng(7);
  const size_t dim = 72;
  const size_t n_rows = 2000, n_cand = 500;
  EmbeddingMatrix matrix;
  for (size_t i = 0; i < n_rows; ++i) {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    matrix.AppendRow(v);
  }
  std::vector<int> cand;
  for (size_t i = 0; i < n_cand; ++i) {
    cand.push_back(static_cast<int>(rng.Uniform(n_rows)));
  }
  std::vector<float> query(dim);
  for (auto& x : query) x = static_cast<float>(rng.Gaussian());
  const double cand_bytes =
      static_cast<double>(n_cand) * dim * sizeof(float) / 1e6;

  const double per_pair_ns = TimeNs([&] {
    float sum = 0.0f;
    for (int id : cand) {
      sum += PerPairCosineBaseline(query,
                                   matrix.row(static_cast<size_t>(id)));
    }
    return static_cast<double>(sum);
  });
  results.push_back(Report("candidate_scoring_per_pair_500x72",
                           per_pair_ns, cand_bytes,
                           static_cast<double>(n_cand)));

  const float inv_q = kernels::InvNorm(query.data(), query.size());
  std::vector<float> scores(n_cand);
  const double batched_ns = TimeNs([&] {
    kernels::BatchedCosineRows(query.data(), inv_q, matrix.data(),
                               matrix.cols(), cand.data(), cand.size(),
                               matrix.inv_norms(), scores.data());
    return static_cast<double>(scores[0]);
  });
  results.push_back(Report("candidate_scoring_batched_500x72", batched_ns,
                           cand_bytes, static_cast<double>(n_cand)));
  const double cosine_speedup = per_pair_ns / batched_ns;
  std::printf("  -> batched cosine speedup vs per-pair: %.2fx\n\n",
              cosine_speedup);

  // --- Blocked GEMM at encoder-forward shape --------------------------
  const int gn = 96, gk = 72, gm = 72;
  std::vector<float> ga(static_cast<size_t>(gn) * gk);
  std::vector<float> gb(static_cast<size_t>(gk) * gm);
  for (auto& x : ga) x = static_cast<float>(rng.Gaussian());
  for (auto& x : gb) x = static_cast<float>(rng.Gaussian());
  std::vector<float> gc(static_cast<size_t>(gn) * gm);
  const double gemm_bytes =
      static_cast<double>(gn * gk + gk * gm + gn * gm) * sizeof(float) /
      1e6;
  const double gemm_ns = TimeNs([&] {
    std::fill(gc.begin(), gc.end(), 0.0f);
    kernels::Gemm(ga.data(), gb.data(), gc.data(), gn, gk, gm);
    return static_cast<double>(gc[0]);
  });
  results.push_back(Report("gemm_96x72x72", gemm_ns, gemm_bytes, 0));
  // Scalar reference at the same shape (explicit-level entry point, so
  // one report records the MatMul dispatch win even on SIMD hardware).
  const double gemm_scalar_ns = TimeNs([&] {
    std::fill(gc.begin(), gc.end(), 0.0f);
    kernels::GemmAt(kernels::Dispatch::kScalar, ga.data(), gb.data(),
                    gc.data(), gn, gk, gm);
    return static_cast<double>(gc[0]);
  });
  results.push_back(
      Report("gemm_96x72x72_scalar_ref", gemm_scalar_ns, gemm_bytes, 0));
  const double gemm_speedup = gemm_scalar_ns / gemm_ns;
  std::printf("  -> gemm dispatch speedup vs scalar: %.2fx\n\n",
              gemm_speedup);

  // --- LSH hashing: one matvec against the flat hyperplane block ------
  LshIndex lsh(static_cast<int>(dim), 8, 12);
  const double lsh_bytes =
      static_cast<double>(8 * 12) * dim * sizeof(float) / 1e6;
  const double lsh_ns = TimeNs([&] {
    return static_cast<double>(lsh.QueryKeys(query).size());
  });
  results.push_back(Report("lsh_query_keys_96planes", lsh_ns, lsh_bytes, 0));

  // --- Encoder forward + serving paths --------------------------------
  GeneratorOptions gopts;
  gopts.num_tables = 40;
  const LabeledCorpus corpus = GenerateDataset("cancerkg", gopts);
  TabBiNConfig cfg;
  cfg.hidden = 36;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.intermediate = 72;
  cfg.max_seq_len = 96;
  auto sys = std::make_shared<TabBiNSystem>(
      TabBiNSystem::Create(corpus.corpus.tables, cfg));

  const double encode_ns = TimeNs([&] {
    return static_cast<double>(
        sys->EncodeAll(corpus.corpus.tables[0]).row.hidden.rows());
  });
  results.push_back(Report("encode_all_one_table", encode_ns, 0, 1));

  TabBinService svc(sys);
  auto add = svc.AddTables(corpus.corpus.tables);
  if (!add.ok()) {
    std::fprintf(stderr, "AddTables failed: %s\n",
                 add.status().ToString().c_str());
    return 1;
  }

  const double query_ns = TimeNs([&] {
    const Table& t = corpus.corpus.tables[0];
    auto r = svc.SimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
    return r.ok() ? static_cast<double>(r.value().matches.size()) : 0.0;
  });
  results.push_back(Report("service_similar_columns", query_ns, 0, 1));

  // Mixed read/write: one churn write (add + remove of a cached-encode
  // table) followed by 8 reads, serialized — a single-threaded stand-in
  // for BM_ServiceMixedReadWrite that stays meaningful on 1-core CI.
  Table churn = corpus.corpus.tables[0];
  churn.set_id("churn");
  churn.set_caption("churn table");
  const double mixed_ns = TimeNs([&] {
    double acc = 0;
    svc.AddTables({churn});
    for (int i = 0; i < 8; ++i) {
      const Table& t =
          corpus.corpus.tables[static_cast<size_t>(i * 5 + 1) %
                               corpus.corpus.tables.size()];
      auto r = svc.SimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
      acc += r.ok() ? 1 : 0;
    }
    acc += svc.RemoveTable("churn").ok() ? 1 : 0;
    return acc;
  });
  results.push_back(Report("service_mixed_1w8r", mixed_ns, 0, 9));

  // --- JSON -----------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"dispatch\": \"%s\",\n  \"results\": [\n",
               dispatch.c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"mb_per_s\": %.1f, \"items_per_s\": %.1f, "
                 "\"dispatch\": \"%s\"}%s\n",
                 r.op.c_str(), r.ns_per_op, r.mb_per_s,
                 r.items_per_s, dispatch.c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"derived\": {\n"
               "    \"candidate_scoring_speedup_vs_per_pair\": %.2f,\n"
               "    \"gemm_dispatch_speedup_vs_scalar\": %.2f\n"
               "  }\n}\n",
               cosine_speedup, gemm_speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace tabbin

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_PR5.json";
  return tabbin::Run(out);
}
