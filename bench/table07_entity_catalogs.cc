// Regenerates paper Table 7: the entity catalogs — 18 entity types
// across the five datasets, with catalog sizes and a sampled AP@20
// quality estimate. The paper's AP comes from two human annotators over
// samples of size 40; here the synthetic generator provides ground truth
// so AP@20 is measured by clustering extracted entity mentions with the
// TabBiN-column model (the paper's §4.3 protocol).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  std::printf("\n==========================================================\n");
  std::printf("Table 7 — Entity catalogs (18 types over 5 datasets)\n");
  std::printf("==========================================================\n");
  std::printf("%-12s %-18s %8s %8s %8s\n", "dataset", "entity type",
              "catalog", "mentions", "AP@20");
  std::printf("----------------------------------------------------------\n");

  ModelSet models;
  models.tabbin = true;
  auto eval_opts = BenchEvalOptions();

  int total_types = 0;
  for (const std::string& dataset : DatasetNames()) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();
    auto embedded =
        EmbedEntities(data.corpus, data.entities, env.TabbinEntity());

    for (const auto& catalog : data.catalogs) {
      ++total_types;
      // Mentions of this type recorded in the corpus.
      int mentions = 0;
      for (const auto& q : data.entities) {
        if (q.label == catalog.name) ++mentions;
      }
      // AP quality: cluster evaluation restricted to queries of this type
      // (labels across all types; a good catalog keeps its type pure).
      std::vector<std::vector<bool>> runs;
      std::vector<int> totals;
      int type_population = 0;
      for (size_t i = 0; i < embedded.size(); ++i) {
        if (embedded.label(i) == catalog.name) ++type_population;
      }
      for (size_t i = 0; i < embedded.size(); ++i) {
        if (embedded.label(i) != catalog.name) continue;
        auto ranked = RankBySimilarity(embedded, static_cast<int>(i));
        std::vector<bool> rel;
        for (const auto& r : ranked) {
          rel.push_back(embedded.label(static_cast<size_t>(r.index)) ==
                        catalog.name);
        }
        runs.push_back(std::move(rel));
        totals.push_back(type_population - 1);
        if (runs.size() >= 40) break;  // paper: sample of size 40
      }
      const double ap = MeanAveragePrecision(runs, eval_opts.k, totals);
      std::printf("%-12s %-18s %8zu %8d %8.3f\n", dataset.c_str(),
                  catalog.name.c_str(), catalog.entities.size(), mentions,
                  ap);
    }
  }
  std::printf("----------------------------------------------------------\n");
  std::printf("total entity types: %d (paper: 18)\n", total_types);
  PrintExpectation(
      "large, high-quality catalogs per dataset; AP stays high for "
      "domain-specific types (paper reports annotator AP on samples of 40).");
  return 0;
}
