// Regenerates paper Table 13: ablation study on Table Clustering —
// TabBiN_1..4 (see table12_ablation_cc.cc) evaluated on TC over nested /
// numerical / relational splits. Expected shape: removing the visibility
// matrix costs the most (paper: −0.34 MAP on Webtables strings, −0.30 on
// relational Webtables); coordinates −0.12..−0.15 on nested/numeric.
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

namespace {

struct Ablation {
  const char* name;
  void (*apply)(TabBiNConfig*);
};

const Ablation kAblations[] = {
    {"TabBiN (full)", [](TabBiNConfig*) {}},
    {"TabBiN_1 -visibility",
     [](TabBiNConfig* c) { c->use_visibility_matrix = false; }},
    {"TabBiN_2 -types",
     [](TabBiNConfig* c) { c->use_type_inference = false; }},
    {"TabBiN_3 -units/nest",
     [](TabBiNConfig* c) { c->use_units_nesting = false; }},
    {"TabBiN_4 -coords",
     [](TabBiNConfig* c) { c->use_bidimensional_coords = false; }},
};

}  // namespace

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  auto eval_opts = BenchEvalOptions();
  PrintHeader("Table 13", "TC ablations (TabBiN_1..4)");

  for (const std::string& dataset : {std::string("cancerkg"),
                                     std::string("webtables")}) {
    GeneratorOptions gen;
    gen.num_tables = kBenchTables;
    LabeledCorpus data = GenerateDataset(dataset, gen);

    auto split_indices = [&](const std::function<bool(const Table&)>& pred) {
      std::vector<int> out;
      for (size_t i = 0; i < data.tables.size(); ++i) {
        const Table& t = data.corpus.tables[static_cast<size_t>(
            data.tables[i].table_index)];
        if (pred(t)) out.push_back(static_cast<int>(i));
      }
      return out;
    };
    auto nested = split_indices([](const Table& t) {
      return t.HasNesting();
    });
    auto numeric = split_indices([](const Table& t) {
      return IsNumericTable(t, 0.8);
    });
    auto relational = split_indices([](const Table& t) {
      return t.IsRelational();
    });
    std::vector<int> all;  // empty = every item queries

    for (const auto& ablation : kAblations) {
      TabBiNConfig cfg = BenchTabBiNConfig();
      ablation.apply(&cfg);
      TabBiNSystem sys = TabBiNSystem::Create(data.corpus.tables, cfg);
      sys.Pretrain(data.corpus.tables);

      std::map<int, TableEncodings> cache;
      auto embed = [&](const Table& t) {
        int idx = -1;
        for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
          if (&data.corpus.tables[i] == &t) idx = static_cast<int>(i);
        }
        auto it = cache.find(idx);
        if (it == cache.end()) {
          it = cache.emplace(idx, sys.EncodeAll(t)).first;
        }
        return sys.TableComposite1(it->second);
      };

      struct Split {
        const char* name;
        const std::vector<int>* queries;
      };
      std::vector<Split> splits = {{"all", &all},
                                   {"nested", &nested},
                                   {">80% numeric", &numeric},
                                   {"relational", &relational}};
      auto items = EmbedTables(data.corpus, data.tables, embed);
      for (auto& s : splits) {
        if (s.queries != &all && s.queries->size() < 5) continue;
        ClusterEvalOptions opts = eval_opts;
        opts.query_indices = *s.queries;
        auto r = EvaluateClustering(items, opts);
        PrintRow(ablation.name, dataset + "/" + s.name, r.map, r.mrr,
                 r.queries);
      }
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "all four components matter; visibility matrix removal costs most "
      "(paper −0.30..−0.34 MAP), coordinates −0.12..−0.15 on nested/"
      "numeric splits.");
  return 0;
}
