// Regenerates paper Table 10: CC MAP/MRR by TabBiN without vs with
// composite embeddings (TabBiN-colcomp = HMD-model attribute embedding ⊕
// column-model data embedding). Expected shape: the composite wins on
// every dataset, on both textual and numerical columns.
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 10", "CC — TabBiN single-model vs composite embeddings");
  for (const std::string& dataset : DatasetNames()) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    auto text_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return !IsNumericColumn(t, q.col);
        });
    auto num_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return IsNumericColumn(t, q.col);
        });

    struct Entry {
      const char* name;
      ColumnEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN (single)", env.TabbinColumnSingle()},
        {"TabBiN-colcomp", env.TabbinColumnComposite()},
    };
    for (auto& e : entries) {
      auto textual = EvaluateClustering(
          EmbedColumns(data.corpus, text_cols, e.embed), eval_opts);
      auto numerical = EvaluateClustering(
          EmbedColumns(data.corpus, num_cols, e.embed), eval_opts);
      PrintRow(e.name, dataset + "/textual", textual.map, textual.mrr,
               textual.queries);
      PrintRow(e.name, dataset + "/numerical", numerical.map, numerical.mrr,
               numerical.queries);
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "composite (colcomp) beats the single column model on every dataset "
      "and both column types; strongest on ranges (CancerKG).");
  return 0;
}
