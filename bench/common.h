// Shared benchmark harness: generates a dataset, trains TabBiN and the
// baselines at CPU scale, caches table encodings, and provides the
// embedder closures + report formatting used by every tableXX binary.
//
// Scale note: the paper pre-trains BERT-BASE geometry for 50k steps on
// GPUs; these benchmarks run the identical pipeline at reduced geometry
// (see BenchTabBiNConfig) so every table regenerates in minutes on a
// laptop. EXPERIMENTS.md records the paper-vs-measured comparison.
#ifndef TABBIN_BENCH_COMMON_H_
#define TABBIN_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bertlike.h"
#include "baselines/tuta.h"
#include "baselines/word2vec.h"
#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "service/sharded_service.h"
#include "service/table_service.h"
#include "tasks/clustering.h"
#include "tasks/pipelines.h"

namespace tabbin {
namespace bench {

/// \brief The pre-kernel per-pair scoring path, kept verbatim as the
/// "before" baseline of the PR-5 candidate-scoring comparison:
/// double-accumulated scalar cosine that recomputes BOTH row norms on
/// every call. micro_bench and perf_report share this one copy so their
/// published speedups measure against the same baseline.
inline float PerPairCosineBaseline(VecView a, VecView b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

/// \brief Which models to train for a benchmark (training dominates cost).
struct ModelSet {
  bool tabbin = true;
  bool tuta = false;
  bool bertlike = false;
  bool word2vec = false;
};

/// \brief Parses harness flags shared by every paper-table binary:
///   `--snapshot_dir=DIR` (falling back to the TABBIN_SNAPSHOT_DIR
///   environment variable) — when set, BenchEnv loads
///   `<dir>/<dataset>_s<seed>.tbsn` instead of pretraining TabBiN, and
///   writes that snapshot (models + cached table encodings) after the
///   first cold run, so re-running any paper table skips pretraining.
///   `--shards=N` — BenchEnv serves TabBiN through a ShardedTabBinService
///   with N hash-partitioned shards instead of the single-shard
///   TabBinService (answers are byte-identical; the knob exists so the
///   paper tables can exercise the scatter-gather path).
void InitFromArgs(int argc, char** argv);

/// \brief Snapshot directory from InitFromArgs; empty when disabled.
const std::string& SnapshotDir();

/// \brief Shard count from InitFromArgs (default 1 = single shard).
int NumShards();

/// \brief The CPU-scale TabBiN configuration used by all benchmarks.
TabBiNConfig BenchTabBiNConfig();

/// \brief Matching BertLike configuration.
BertLikeConfig BenchBertConfig();

/// \brief Default corpus size per dataset.
constexpr int kBenchTables = 90;

/// \brief Evaluation options shared by all benchmarks (top-20 clusters,
/// as in the paper).
ClusterEvalOptions BenchEvalOptions();

/// \brief A dataset with trained models and cached TabBiN encodings.
///
/// The TabBiN side is served through a TabBinService facade so the
/// paper-table numbers exercise exactly the code a production caller
/// uses (engine-cached encode → composite embedding).
class BenchEnv {
 public:
  BenchEnv(const std::string& dataset, const ModelSet& models,
           int num_tables = kBenchTables, uint64_t seed = 7);

  const LabeledCorpus& data() const { return data_; }
  const Corpus& corpus() const { return data_.corpus; }
  TabBiNSystem& tabbin() { return *tabbin_; }
  /// \brief The serving facade over this dataset — a TabBinService, or
  /// a ShardedTabBinService under `--shards=N`. The corpus is indexed
  /// (AddTables) lazily on first use, so benchmarks that only need the
  /// embedding accessors don't pay for LSH/entity index construction.
  TabBinServing& service();
  EncoderEngine& engine() { return service_->engine(); }
  TutaModel& tuta() { return *tuta_; }
  BertLikeModel& bertlike() { return *bert_; }
  Word2Vec& word2vec() { return *w2v_; }

  /// \brief Cached EncodeAll for a table. Corpus tables resolve to the
  /// constructor-prewarmed encodings in O(1); any other table goes
  /// through the engine's fingerprint cache.
  std::shared_ptr<const TableEncodings> Encodings(const Table& table);

  /// \brief Encodes every corpus table in parallel via the engine (called
  /// by the constructor when TabBiN is trained) and keeps the results
  /// indexed by table position for O(1) embedder-callback access.
  void PrewarmEncodings();

  // Embedder closures for the pipelines (capture `this`).
  ColumnEmbedder TabbinColumnComposite();
  ColumnEmbedder TabbinColumnSingle();
  TableEmbedder TabbinTableComposite1();
  TableEmbedder TabbinTableComposite2();  // with BertLike caption emb
  TableEmbedder TabbinTableSingle();
  CellEmbedder TabbinEntity();

  ColumnEmbedder TutaColumn();
  TableEmbedder TutaTable();
  CellEmbedder TutaEntity();

  ColumnEmbedder BertColumn();
  TableEmbedder BertTable();
  CellEmbedder BertEntity();

  ColumnEmbedder W2vColumn();
  TableEmbedder W2vTable();
  CellEmbedder W2vEntity();

  /// \brief Table index lookup for a Table pointer-identity in corpus.
  int IndexOf(const Table& table) const;

 private:
  LabeledCorpus data_;
  std::shared_ptr<TabBiNSystem> tabbin_;  // shared with service_
  std::unique_ptr<TabBinServing> service_;
  bool service_indexed_ = false;
  std::vector<std::shared_ptr<const TableEncodings>> prewarmed_;
  std::unique_ptr<TutaModel> tuta_;
  std::unique_ptr<BertLikeModel> bert_;
  std::unique_ptr<Word2Vec> w2v_;
};

// ---------------------------------------------------------------------------
// Query filtering helpers (the paper's table/column splits)
// ---------------------------------------------------------------------------

std::vector<ColumnQuery> FilterColumns(
    const LabeledCorpus& data,
    const std::function<bool(const Table&, const ColumnQuery&)>& pred);

std::vector<TableQuery> FilterTables(
    const LabeledCorpus& data,
    const std::function<bool(const Table&)>& pred);

// ---------------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------------

/// \brief Prints "== Table N: title ==" header with the paper reference.
void PrintHeader(const std::string& table_id, const std::string& title);

/// \brief Prints one "model | split | MAP | MRR" row.
void PrintRow(const std::string& model, const std::string& split, double map,
              double mrr, int queries = -1);

/// \brief Prints the expected qualitative shape from the paper.
void PrintExpectation(const std::string& text);

}  // namespace bench
}  // namespace tabbin

#endif  // TABBIN_BENCH_COMMON_H_
