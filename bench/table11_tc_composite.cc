// Regenerates paper Table 11: TC MAP/MRR by TabBiN without vs with
// composite embeddings — single row-model embedding vs tblcomp1
// (row ⊕ HMD ⊕ VMD) vs tblcomp2 (tblcomp1 ⊕ fine-tuned caption model) —
// across nested / HMD / HMD+VMD / relational splits on CovidKG and
// CancerKG. Expected shape: tblcomp2 >= tblcomp1 >= single everywhere.
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  models.bertlike = true;  // caption model for tblcomp2
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 11", "TC — single vs tblcomp1 vs tblcomp2");
  for (const std::string& dataset : {std::string("covidkg"),
                                     std::string("cancerkg")}) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    auto split_indices = [&](const std::function<bool(const Table&)>& pred) {
      std::vector<int> out;
      for (size_t i = 0; i < data.tables.size(); ++i) {
        const Table& t = data.corpus.tables[static_cast<size_t>(
            data.tables[i].table_index)];
        if (pred(t)) out.push_back(static_cast<int>(i));
      }
      return out;
    };
    auto nested = split_indices([](const Table& t) {
      return t.HasNesting();
    });
    auto hmd_only = split_indices([](const Table& t) {
      return t.vmd_cols() == 0 && !t.HasNesting();
    });
    auto hmd_vmd = split_indices([](const Table& t) {
      return t.vmd_cols() > 0;
    });
    auto relational = split_indices([](const Table& t) {
      return t.IsRelational();
    });

    struct Entry {
      const char* name;
      TableEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN (single)", env.TabbinTableSingle()},
        {"TabBiN-tblcomp1", env.TabbinTableComposite1()},
        {"TabBiN-tblcomp2", env.TabbinTableComposite2()},
    };
    struct Split {
      const char* name;
      const std::vector<int>* queries;
    };
    std::vector<Split> splits = {{"nested", &nested},
                                 {"hmd-only", &hmd_only},
                                 {"hmd+vmd", &hmd_vmd},
                                 {"relational", &relational}};
    for (auto& e : entries) {
      auto items = EmbedTables(data.corpus, data.tables, e.embed);
      for (auto& s : splits) {
        if (s.queries->size() < 5) continue;
        ClusterEvalOptions opts = eval_opts;
        opts.query_indices = *s.queries;
        auto r = EvaluateClustering(items, opts);
        PrintRow(e.name, dataset + "/" + s.name, r.map, r.mrr, r.queries);
      }
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "composites dominate the single row-model embedding on every split; "
      "tblcomp2 (captions) adds further gains.");
  return 0;
}
