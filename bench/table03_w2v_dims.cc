// Regenerates paper Table 3: average training time vs MAP/MRR for CC and
// TC on CancerKG (string data) across Word2Vec embedding dimensions.
// Expected shape: accuracy plateaus around dim 300 while training time
// keeps growing — which is why the paper settles on 300.
#include <cstdio>

#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = false;  // Word2Vec only
  BenchEnv env("cancerkg", models, kBenchTables);
  const LabeledCorpus& data = env.data();

  // String-only column queries (the paper's "tables with string data").
  auto string_cols = FilterColumns(data, [](const Table& t, const ColumnQuery& q) {
    return !IsNumericColumn(t, q.col);
  });
  auto eval_opts = BenchEvalOptions();

  std::printf("\n==========================================================\n");
  std::printf("Table 3 — Word2Vec dimensionality: training time vs MAP/MRR\n");
  std::printf("(CC and TC on CancerKG, string data)\n");
  std::printf("==========================================================\n");
  std::printf("%5s %10s | %7s %7s | %7s %7s\n", "dim", "train(s)", "CC MAP",
              "CC MRR", "TC MAP", "TC MRR");
  std::printf("----------------------------------------------------------\n");

  std::vector<std::string> sentences;
  for (const auto& t : data.corpus.tables) {
    for (auto& tuple : SerializeTuples(t)) sentences.push_back(std::move(tuple));
  }

  for (int dim : {50, 100, 200, 300, 500}) {
    Word2VecConfig cfg;
    cfg.dim = dim;
    cfg.epochs = 3;
    Word2Vec w2v(cfg);
    const double secs = w2v.Train(sentences);

    ColumnEmbedder col_embed = [&](const Table& t, int col) {
      std::string text;
      for (int r = 0; r < t.rows(); ++r) {
        if (!t.cell(r, col).is_empty()) {
          text += t.cell(r, col).value.ToString() + " ";
        }
      }
      return w2v.Embed(text);
    };
    TableEmbedder tbl_embed = [&](const Table& t) {
      std::string text = t.caption();
      for (const auto& tuple : SerializeTuples(t)) text += " " + tuple;
      return w2v.Embed(text);
    };

    auto cc = EvaluateClustering(
        EmbedColumns(data.corpus, string_cols, col_embed), eval_opts);
    auto tc = EvaluateClustering(
        EmbedTables(data.corpus, data.tables, tbl_embed), eval_opts);
    std::printf("%5d %10.2f | %7.3f %7.3f | %7.3f %7.3f\n", dim, secs, cc.map,
                cc.mrr, tc.map, tc.mrr);
  }
  PrintExpectation(
      "MAP/MRR plateau near dim≈300 while training time keeps rising; "
      "the paper therefore picks 300.");
  return 0;
}
