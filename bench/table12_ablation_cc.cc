// Regenerates paper Table 12: ablation study on Column Clustering.
// TabBiN_1 removes the visibility matrix, TabBiN_2 type inference,
// TabBiN_3 units+nesting, TabBiN_4 the bi-dimensional coordinates; each
// ablated model is re-pre-trained and evaluated on CC. Expected shape:
// every ablation hurts; the visibility matrix most (paper: −0.25 MAP on
// string columns, −0.23 on numerical), units+nesting most on numerical
// columns (−0.21 CancerKG).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

namespace {

struct Ablation {
  const char* name;
  void (*apply)(TabBiNConfig*);
};

const Ablation kAblations[] = {
    {"TabBiN (full)", [](TabBiNConfig*) {}},
    {"TabBiN_1 -visibility",
     [](TabBiNConfig* c) { c->use_visibility_matrix = false; }},
    {"TabBiN_2 -types",
     [](TabBiNConfig* c) { c->use_type_inference = false; }},
    {"TabBiN_3 -units/nest",
     [](TabBiNConfig* c) { c->use_units_nesting = false; }},
    {"TabBiN_4 -coords",
     [](TabBiNConfig* c) { c->use_bidimensional_coords = false; }},
};

}  // namespace

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  auto eval_opts = BenchEvalOptions();
  PrintHeader("Table 12", "CC ablations (TabBiN_1..4)");

  for (const std::string& dataset : {std::string("cancerkg"),
                                     std::string("webtables")}) {
    GeneratorOptions gen;
    gen.num_tables = kBenchTables;
    LabeledCorpus data = GenerateDataset(dataset, gen);
    auto text_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return !IsNumericColumn(t, q.col);
        });
    auto num_cols = FilterColumns(
        data, [](const Table& t, const ColumnQuery& q) {
          return IsNumericColumn(t, q.col);
        });

    for (const auto& ablation : kAblations) {
      TabBiNConfig cfg = BenchTabBiNConfig();
      ablation.apply(&cfg);
      TabBiNSystem sys = TabBiNSystem::Create(data.corpus.tables, cfg);
      sys.Pretrain(data.corpus.tables);

      std::map<int, TableEncodings> cache;
      auto embed = [&](const Table& t, int col) {
        int idx = -1;
        for (size_t i = 0; i < data.corpus.tables.size(); ++i) {
          if (&data.corpus.tables[i] == &t) idx = static_cast<int>(i);
        }
        auto it = cache.find(idx);
        if (it == cache.end()) {
          it = cache.emplace(idx, sys.EncodeAll(t)).first;
        }
        return sys.ColumnComposite(it->second, col);
      };

      auto textual = EvaluateClustering(
          EmbedColumns(data.corpus, text_cols, embed), eval_opts);
      auto numerical = EvaluateClustering(
          EmbedColumns(data.corpus, num_cols, embed), eval_opts);
      PrintRow(ablation.name, dataset + "/textual", textual.map,
               textual.mrr, textual.queries);
      PrintRow(ablation.name, dataset + "/numerical", numerical.map,
               numerical.mrr, numerical.queries);
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "every ablation drops MAP; visibility matrix hurts most (paper "
      "−0.23..−0.25), units+nesting hurts numerical columns most (−0.21).");
  return 0;
}
