// Regenerates paper Table 9: entity-matching F1 (%) — TabBiN (with a
// classification head, see §4 "DITTO") vs the DITTO baseline on
// ER-Magellan-style product datasets (Amazon-Google, Abt-Buy analogues)
// and on pair sets from our corpora (CancerKG drugs, CovidKG vaccines).
// Expected shape: the two systems trade narrow wins (paper: TabBiN
// +1.92 F1 on Amazon-Google, DITTO +1.21 on Abt-Buy, DITTO +1.24/+0.37
// on the corpus datasets).
#include "baselines/ditto.h"
#include "bench/common.h"
#include "text/wordpiece.h"

using namespace tabbin;
using namespace tabbin::bench;

namespace {

// TabBiN-side matcher: entity string -> one-cell table -> TabBiN column
// model embedding; logistic head on the pair features (the paper's
// "linear layer + softmax on top of our TabBiN transformer layers").
EmbeddingMatcher::EmbedFn TabbinStringEmbedder(TabBiNSystem* sys) {
  return [sys](const std::string& text) {
    Table t(2, 1, /*hmd_rows=*/1, /*vmd_cols=*/0);
    t.SetValue(0, 0, Value::String("entity"));
    t.SetValue(1, 0, Value::String(text));
    TableEncodings enc;
    enc.col = sys->EncodeSegment(t, TabBiNVariant::kDataColumn);
    enc.hmd = sys->EncodeSegment(t, TabBiNVariant::kHmd);
    return sys->EntityEmbedding(enc, 1, 0);
  };
}

struct PairTask {
  std::string label;
  PairDataset dataset;
  std::string pretrain_corpus;  // domain corpus for encoder vocab/LM
};

}  // namespace

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  std::printf("\n==========================================================\n");
  std::printf("Table 9 — Entity-matching F1 (%%): TabBiN vs DITTO\n");
  std::printf("==========================================================\n");
  std::printf("%-16s %10s %10s %10s\n", "dataset", "TabBiN", "DITTO",
              "delta");
  std::printf("----------------------------------------------------------\n");

  std::vector<PairTask> tasks;
  tasks.push_back({"amazon-google",
                   GenerateProductPairs("amazon-google", 240, 240, 51),
                   "webtables"});
  tasks.push_back({"abt-buy", GenerateProductPairs("abt-buy", 240, 240, 52),
                   "webtables"});
  {
    auto cancer_catalogs = CatalogsFor("cancerkg", 7);
    tasks.push_back({"cancerkg-drugs",
                     GenerateCatalogPairs(cancer_catalogs[0], "cancer", 240,
                                          240, 53),
                     "cancerkg"});
    auto covid_catalogs = CatalogsFor("covidkg", 7);
    tasks.push_back({"covidkg-vaccines",
                     GenerateCatalogPairs(covid_catalogs[0], "covid", 240,
                                          240, 54),
                     "covidkg"});
  }

  for (auto& task : tasks) {
    // Vocab from the pair texts themselves plus the domain corpus.
    std::vector<std::string> vocab_texts;
    for (const auto& p : task.dataset.train) {
      vocab_texts.push_back(p.a);
      vocab_texts.push_back(p.b);
    }
    Vocab vocab = TrainWordPieceVocab(vocab_texts, 4000, 1);

    // DITTO: fine-tuned pair classifier.
    BertLikeConfig bcfg = BenchBertConfig();
    bcfg.pretrain_steps = 60;
    MatcherConfig mcfg;
    mcfg.epochs = 20;
    DittoModel ditto(bcfg, &vocab, mcfg);
    ditto.Train(task.dataset.train);
    BinaryScore ditto_score = ditto.Evaluate(task.dataset.test);

    // TabBiN: pretrain a small system on the pair texts as 1-col tables,
    // then a logistic matcher over its entity embeddings.
    TabBiNConfig tcfg = BenchTabBiNConfig();
    tcfg.pretrain_steps = 40;
    TabBiNSystem sys(tcfg, vocab);
    std::vector<Table> pretrain_tables;
    for (size_t i = 0; i < task.dataset.train.size() && i < 60; ++i) {
      Table t(3, 1, 1, 0);
      t.SetValue(0, 0, Value::String("entity"));
      t.SetValue(1, 0, Value::String(task.dataset.train[i].a));
      t.SetValue(2, 0, Value::String(task.dataset.train[i].b));
      pretrain_tables.push_back(std::move(t));
    }
    sys.Pretrain(pretrain_tables);
    EmbeddingMatcher tabbin_matcher(TabbinStringEmbedder(&sys),
                                    tcfg.hidden, mcfg);
    tabbin_matcher.Train(task.dataset.train);
    BinaryScore tabbin_score = tabbin_matcher.Evaluate(task.dataset.test);

    std::printf("%-16s %10.2f %10.2f %+10.2f\n", task.label.c_str(),
                tabbin_score.f1 * 100, ditto_score.f1 * 100,
                (tabbin_score.f1 - ditto_score.f1) * 100);
  }
  PrintExpectation(
      "narrow trade-offs in both directions (paper: TabBiN +1.92 on "
      "Amazon-Google; DITTO +1.21 on Abt-Buy, +1.24/+0.37 on ours).");
  return 0;
}
