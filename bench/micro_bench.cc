// Microbenchmarks (google-benchmark) for the hot paths of the library:
// tokenization, sequence building, visibility-matrix construction,
// encoder forward passes, LSH queries, cosine ranking, and the
// TabBinService serving paths (query QPS, incremental vs rebuild).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include <map>
#include <mutex>

#include "bench/common.h"
#include "core/encoder_engine.h"
#include "core/tabbin.h"
#include "datagen/corpus_gen.h"
#include "service/sharded_service.h"
#include "service/table_service.h"
#include "tasks/clustering.h"
#include "tasks/lsh.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "text/wordpiece.h"
#include "util/threadpool.h"

namespace tabbin {
namespace {

const LabeledCorpus& SharedCorpus() {
  static const LabeledCorpus* corpus = [] {
    GeneratorOptions opts;
    opts.num_tables = 40;
    return new LabeledCorpus(GenerateDataset("cancerkg", opts));
  }();
  return *corpus;
}

TabBiNSystem& SharedSystem() {
  static TabBiNSystem* sys = [] {
    TabBiNConfig cfg;
    cfg.hidden = 36;
    cfg.num_layers = 1;
    cfg.num_heads = 2;
    cfg.intermediate = 72;
    cfg.max_seq_len = 96;
    return new TabBiNSystem(
        TabBiNSystem::Create(SharedCorpus().corpus.tables, cfg));
  }();
  return *sys;
}

void BM_Tokenize(benchmark::State& state) {
  Vocab vocab = TrainWordPieceVocab(
      {"median overall survival months progression free"}, 500, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenizeToIds("median overall survival 20.3 months", vocab));
  }
}
BENCHMARK(BM_Tokenize);

void BM_BuildSequence(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const Table& t = SharedCorpus().corpus.tables[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSequence(t, TabBiNVariant::kDataRow,
                                           sys.vocab(), *sys.typer(),
                                           sys.config()));
  }
}
BENCHMARK(BM_BuildSequence);

void BM_VisibilityMatrix(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const Table& t = SharedCorpus().corpus.tables[0];
  EncodedSequence seq = BuildSequence(t, TabBiNVariant::kDataRow, sys.vocab(),
                                      *sys.typer(), sys.config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSequenceVisibility(seq));
  }
  state.SetLabel("seq_len=" + std::to_string(seq.size()));
}
BENCHMARK(BM_VisibilityMatrix);

void BM_EncoderForward(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const Table& t = SharedCorpus().corpus.tables[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sys.EncodeSegment(t, TabBiNVariant::kDataRow));
  }
}
BENCHMARK(BM_EncoderForward);

void BM_ColumnComposite(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const Table& t = SharedCorpus().corpus.tables[0];
  TableEncodings enc = sys.EncodeAll(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.ColumnComposite(enc, t.vmd_cols()));
  }
}
BENCHMARK(BM_ColumnComposite);

// Serial baseline: EncodeAll per table, one after another.
void BM_EncodeAllSerial(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const auto& tables = SharedCorpus().corpus.tables;
  const size_t n = std::min<size_t>(tables.size(), 8);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(sys.EncodeAll(tables[i]));
    }
  }
  state.SetLabel("tables=" + std::to_string(n));
}
BENCHMARK(BM_EncodeAllSerial)->Unit(benchmark::kMillisecond);

// Batched: the same tables through EncoderEngine::EncodeBatch on the
// global thread pool. A fresh engine per iteration so the cache never
// serves a hit — this measures parallel encoding, not memoization.
void BM_EncodeAllBatched(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const auto& tables = SharedCorpus().corpus.tables;
  const size_t n = std::min<size_t>(tables.size(), 8);
  std::vector<const Table*> batch;
  for (size_t i = 0; i < n; ++i) batch.push_back(&tables[i]);
  for (auto _ : state) {
    EncoderEngine engine(&sys, n);
    benchmark::DoNotOptimize(engine.EncodeBatch(batch));
  }
  state.SetLabel("tables=" + std::to_string(n) + " workers=" +
                 std::to_string(ThreadPool::Global().num_threads()));
}
BENCHMARK(BM_EncodeAllBatched)->Unit(benchmark::kMillisecond);

// Steady-state cost of an engine cache hit (fingerprint + LRU touch).
void BM_EncoderEngineCacheHit(benchmark::State& state) {
  TabBiNSystem& sys = SharedSystem();
  const Table& t = SharedCorpus().corpus.tables[0];
  EncoderEngine engine(&sys, 4);
  engine.Encode(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Encode(t));
  }
}
BENCHMARK(BM_EncoderEngineCacheHit);

std::shared_ptr<TabBiNSystem> SharedSystemPtr() {
  // Aliases the function-static system; never deleted, so the no-op
  // deleter is safe.
  static std::shared_ptr<TabBiNSystem> sys(&SharedSystem(),
                                           [](TabBiNSystem*) {});
  return sys;
}

TabBinService& SharedService() {
  static TabBinService* svc = [] {
    auto* s = new TabBinService(SharedSystemPtr());
    if (!s->AddTables(SharedCorpus().corpus.tables).ok()) std::abort();
    return s;
  }();
  return *svc;
}

// Query throughput through the serving facade: LSH candidates + exact
// cosine under the reader lock. ->Threads(8) reports aggregate 8-thread
// QPS against the same service instance (items/s is the QPS figure).
void BM_ServiceSimilarColumns(benchmark::State& state) {
  TabBinService& svc = SharedService();
  const auto& tables = SharedCorpus().corpus.tables;
  // Spread threads across query tables so the engine cache, not one
  // hot entry, is what's exercised.
  const Table& t = tables[static_cast<size_t>(state.thread_index()) %
                          tables.size()];
  ColumnQueryRequest req{t.id(), nullptr, t.vmd_cols(), 10};
  for (auto _ : state) {
    auto r = svc.SimilarColumns(req);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceSimilarColumns)->Threads(1)->Threads(8);

// Incremental corpus update: one new table encoded and inserted into
// the live indexes (no rebuild).
void BM_ServiceAddTablesIncremental(benchmark::State& state) {
  TabBinService svc(SharedSystemPtr());
  if (!svc.AddTables(SharedCorpus().corpus.tables).ok()) std::abort();
  int64_t n = 0;
  for (auto _ : state) {
    Table t = SharedCorpus().corpus.tables[0];
    // Fresh content every iteration so the engine cache cannot serve it.
    t.set_id("inc-" + std::to_string(n));
    t.set_caption("incremental table " + std::to_string(n));
    ++n;
    benchmark::DoNotOptimize(svc.AddTables({t}));
  }
  state.SetLabel("live=" + std::to_string(svc.NumLiveTables()));
}
BENCHMARK(BM_ServiceAddTablesIncremental)->Unit(benchmark::kMillisecond);

// The alternative the facade replaces: re-encoding and re-indexing the
// whole corpus from scratch on every change (fresh service, cold cache).
void BM_ServiceFullRebuild(benchmark::State& state) {
  const auto& tables = SharedCorpus().corpus.tables;
  for (auto _ : state) {
    TabBinService svc(SharedSystemPtr());
    benchmark::DoNotOptimize(svc.AddTables(tables));
  }
  state.SetLabel("tables=" + std::to_string(tables.size()));
}
BENCHMARK(BM_ServiceFullRebuild)->Unit(benchmark::kMillisecond);

// A corpus sized so per-query ranking work (LSH probe + exact cosine)
// dominates the per-shard fixed costs; the 40-table SharedCorpus would
// leave ~5 tables per shard and measure lock overhead only.
const std::vector<Table>& MixedBenchCorpus() {
  static const std::vector<Table>* tables = [] {
    GeneratorOptions opts;
    opts.num_tables = 120;
    opts.seed = 23;
    return new std::vector<Table>(
        GenerateDataset("cancerkg", opts).corpus.tables);
  }();
  return *tables;
}

// One sharded service per shard count, shared across the benchmark's
// threads (lazily built under a mutex — benchmark threads all race into
// the first iteration).
ShardedTabBinService& SharedShardedService(int shards) {
  static std::mutex mu;
  static auto* services =
      new std::map<int, std::unique_ptr<ShardedTabBinService>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*services)[shards];
  if (!slot) {
    ServiceOptions opts;
    opts.encoder_cache_capacity = MixedBenchCorpus().size() + 16;
    slot = std::make_unique<ShardedTabBinService>(SharedSystemPtr(), shards,
                                                  opts);
    if (!slot->AddTables(MixedBenchCorpus()).ok()) std::abort();
  }
  return *slot;
}

// Mixed read/write serving load — the workload sharding exists for.
// Thread 0 churns one dedicated table id (add + remove per iteration;
// the content repeats, so encodes are engine cache hits and the
// measured cost is the write path itself) while the remaining threads
// stream SimilarColumns queries across the whole corpus. With one
// shard, every write serializes all readers behind a single writer
// lock; with 8 shards only readers hitting the writer's shard ever
// wait. items/s is the aggregate mixed-op throughput — compare the
// shards=1 and shards=8 rows at ->Threads(8). The sharded row needs
// real hardware parallelism to pull ahead: on a single-core host the 8
// benchmark threads timeshare one CPU, rwlock contention (the PR 3
// writer-starvation pathology) cannot manifest, and the per-shard
// fan-out is pure overhead. Iterations are pinned so both
// configurations accumulate the same number of tombstoned slots
// (writer churn appends dead rows until the next Compact).
void BM_ServiceMixedReadWrite(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ShardedTabBinService& svc = SharedShardedService(shards);
  const auto& tables = MixedBenchCorpus();
  if (state.thread_index() == 0) {
    Table churn = tables[0];
    churn.set_id("churn-" + std::to_string(shards));
    churn.set_caption("churn table");
    for (auto _ : state) {
      benchmark::DoNotOptimize(svc.AddTables({churn}));
      benchmark::DoNotOptimize(svc.RemoveTable(churn.id()));
    }
    // No Compact here: benchmark threads leave their timed loops at
    // different times, and a writer-locked rebuild would land inside
    // the readers' measurements. The pinned iteration count bounds the
    // tombstone growth identically for both shard configurations.
  } else {
    size_t i = static_cast<size_t>(state.thread_index());
    for (auto _ : state) {
      const Table& t = tables[i % tables.size()];
      i += 7;  // stride so threads spread over tables (and shards)
      auto r = svc.SimilarColumns({t.id(), nullptr, t.vmd_cols(), 10});
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("shards=" + std::to_string(shards));
}
BENCHMARK(BM_ServiceMixedReadWrite)
    ->Arg(1)
    ->Arg(8)
    ->Threads(8)
    ->Iterations(400)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

using bench::PerPairCosineBaseline;

struct CandidateFixture {
  EmbeddingMatrix matrix;
  std::vector<int> candidates;
  std::vector<float> query;
};

// A serving-shaped candidate set: 2000 indexed rows, 500 LSH survivors.
const CandidateFixture& SharedCandidates() {
  static const CandidateFixture* fx = [] {
    auto* f = new CandidateFixture();
    Rng rng(7);
    const size_t dim = 72;
    for (int i = 0; i < 2000; ++i) {
      std::vector<float> v(dim);
      for (auto& x : v) x = static_cast<float>(rng.Gaussian());
      f->matrix.AppendRow(v);
    }
    for (int i = 0; i < 500; ++i) {
      f->candidates.push_back(
          static_cast<int>(rng.Uniform(f->matrix.rows())));
    }
    f->query.resize(dim);
    for (auto& x : f->query) x = static_cast<float>(rng.Gaussian());
    return f;
  }();
  return *fx;
}

// Candidate scoring, old path: one per-pair call per candidate. items/s
// is candidates scored per second — compare against the batched row.
void BM_CandidateScoringPerPair(benchmark::State& state) {
  const CandidateFixture& fx = SharedCandidates();
  for (auto _ : state) {
    float sum = 0.0f;
    for (int id : fx.candidates) {
      sum += PerPairCosineBaseline(fx.query,
                                   fx.matrix.row(static_cast<size_t>(id)));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.candidates.size()));
  state.SetLabel("per-pair baseline");
}
BENCHMARK(BM_CandidateScoringPerPair);

// Candidate scoring, new path: ONE norm-free batched kernel pass over
// the candidate rows (cached inverse norms). This is exactly what
// ServiceShard::RankLocked / AskCandidates, clustering, and RAG dense
// retrieval now execute.
void BM_CandidateScoringBatchedKernel(benchmark::State& state) {
  const CandidateFixture& fx = SharedCandidates();
  const float inv_q =
      kernels::InvNorm(fx.query.data(), fx.query.size());
  std::vector<float> scores(fx.candidates.size());
  for (auto _ : state) {
    kernels::BatchedCosineRows(fx.query.data(), inv_q, fx.matrix.data(),
                               fx.matrix.cols(), fx.candidates.data(),
                               fx.candidates.size(), fx.matrix.inv_norms(),
                               scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.candidates.size()));
  state.SetLabel(std::string("dispatch=") + kernels::ActiveName());
}
BENCHMARK(BM_CandidateScoringBatchedKernel);

// First-pass scan fixture: large enough (60k x 72 floats ~= 17 MB) that
// the scan is memory-bound — the regime the int8 tier targets, where its
// 4x smaller row bytes translate into scan throughput rather than just
// saved ALU work.
struct ScanFixture {
  EmbeddingMatrix matrix;
  std::vector<float> query;
  std::vector<int> rows;
};

const ScanFixture& SharedScan() {
  static const ScanFixture* fx = [] {
    auto* f = new ScanFixture();
    const size_t n = 60000, dim = 72;
    Rng rng(7);
    f->matrix.Reserve(n);
    std::vector<float> v(dim);
    for (size_t i = 0; i < n; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Gaussian());
      f->matrix.AppendRow(v);
    }
    f->matrix.EnableQuantization();
    f->query.resize(dim);
    for (auto& x : f->query) x = static_cast<float>(rng.Gaussian());
    f->rows.resize(n);
    for (size_t i = 0; i < n; ++i) f->rows[i] = static_cast<int>(i);
    return f;
  }();
  return *fx;
}

// Exact float first pass over every row — the cost the quantized scan
// replaces. items/s = rows scanned per second.
void BM_FloatScan(benchmark::State& state) {
  const ScanFixture& fx = SharedScan();
  const float inv_q = kernels::InvNorm(fx.query.data(), fx.query.size());
  std::vector<float> scores(fx.rows.size());
  for (auto _ : state) {
    kernels::BatchedCosineRows(fx.query.data(), inv_q, fx.matrix.data(),
                               fx.matrix.cols(), fx.rows.data(),
                               fx.rows.size(), fx.matrix.inv_norms(),
                               scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.rows.size()));
  state.SetLabel(std::string("dispatch=") + kernels::ActiveName());
}
BENCHMARK(BM_FloatScan);

// Int8 first pass over the same rows (query quantized once per scan,
// as ServiceShard::RankLocked does). Reads 1/4 of the bytes.
void BM_QuantizedScan(benchmark::State& state) {
  const ScanFixture& fx = SharedScan();
  const QuantizedQuery qq =
      MakeQuantizedQuery(VecView(fx.query.data(), fx.query.size()));
  std::vector<float> scores(fx.rows.size());
  for (auto _ : state) {
    QuantizedCosineRows(fx.matrix, qq, fx.rows.data(), fx.rows.size(),
                        scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.rows.size()));
  state.SetLabel(std::string("dispatch=") + kernels::ActiveName());
}
BENCHMARK(BM_QuantizedScan);

// The blocked GEMM micro-kernel at encoder-forward shape
// ([seq, hidden] x [hidden, hidden]).
void BM_KernelGemm(benchmark::State& state) {
  const int n = 96, k = 72, m = 72;
  Rng rng(8);
  std::vector<float> a(static_cast<size_t>(n) * k);
  std::vector<float> b(static_cast<size_t>(k) * m);
  for (auto& x : a) x = static_cast<float>(rng.Gaussian());
  for (auto& x : b) x = static_cast<float>(rng.Gaussian());
  std::vector<float> c(static_cast<size_t>(n) * m);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::Gemm(a.data(), b.data(), c.data(), n, k, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<int64_t>(n) * k * m);  // FLOPs
  state.SetLabel(std::string("dispatch=") + kernels::ActiveName());
}
BENCHMARK(BM_KernelGemm);

void BM_LshQuery(benchmark::State& state) {
  const int dim = 72;
  Rng rng(5);
  LshIndex index(dim, 8, 12);
  std::vector<float> probe(dim);
  for (int i = 0; i < 2000; ++i) {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    if (!index.Insert(i, v).ok()) std::abort();
    if (i == 0) probe = v;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(probe));
  }
}
BENCHMARK(BM_LshQuery);

void BM_CosineRanking(benchmark::State& state) {
  Rng rng(6);
  LabeledEmbeddingSet items;
  for (int i = 0; i < 500; ++i) {
    std::vector<float> v(72);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    items.Add(v, "l" + std::to_string(i % 5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankBySimilarity(items, 0));
  }
}
BENCHMARK(BM_CosineRanking);

}  // namespace
}  // namespace tabbin

BENCHMARK_MAIN();
