// Regenerates paper Table 6: Table Clustering MAP/MRR — relational vs
// non-relational tables with heterogeneous data types (Webtables and
// CancerKG). Expected shape: TabBiN wins clearly on non-relational
// tables; on plain relational tables TUTA is at near-parity (the paper
// even reports TUTA insignificantly ahead on relational CancerKG).
#include "bench/common.h"

using namespace tabbin;
using namespace tabbin::bench;

int main(int argc, char** argv) {
  InitFromArgs(argc, argv);
  ModelSet models;
  models.tabbin = true;
  models.tuta = true;
  models.bertlike = true;
  models.word2vec = true;
  auto eval_opts = BenchEvalOptions();

  PrintHeader("Table 6", "TC — relational vs non-relational tables");
  for (const std::string& dataset : {std::string("webtables"),
                                     std::string("cancerkg")}) {
    BenchEnv env(dataset, models, kBenchTables);
    const LabeledCorpus& data = env.data();

    auto relational = FilterTables(data, [](const Table& t) {
      return t.IsRelational();
    });
    auto non_relational = FilterTables(data, [](const Table& t) {
      return !t.IsRelational();
    });

    struct Entry {
      const char* name;
      TableEmbedder embed;
    };
    std::vector<Entry> entries = {
        {"TabBiN", env.TabbinTableComposite2()},
        {"TUTA-like", env.TutaTable()},
        {"BioBERT-sub", env.BertTable()},
        {"Word2Vec", env.W2vTable()},
    };
    for (auto& e : entries) {
      if (relational.size() >= 5) {
        auto r = EvaluateClustering(
            EmbedTables(data.corpus, relational, e.embed), eval_opts);
        PrintRow(e.name, dataset + "/relational", r.map, r.mrr, r.queries);
      }
      if (non_relational.size() >= 5) {
        auto r = EvaluateClustering(
            EmbedTables(data.corpus, non_relational, e.embed), eval_opts);
        PrintRow(e.name, dataset + "/non-relational", r.map, r.mrr,
                 r.queries);
      }
    }
    std::printf("----------------------------------------------------------\n");
  }
  PrintExpectation(
      "TabBiN ahead on non-relational splits; near-parity with TUTA on "
      "relational tables (paper: TUTA +0.02 MAP on relational CancerKG).");
  return 0;
}
